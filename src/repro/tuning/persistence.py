"""Persisting tuned configurations.

Auto-tuning costs seconds per matrix; production libraries persist the
winner so later runs skip the search (the paper's framework keeps its
compiled-kernel hash table for the same reason).  This module stores
:class:`TuningPoint` records in a small JSON file keyed by a structural
matrix fingerprint plus the device name:

* the fingerprint hashes the sparsity *structure* (shape, nnz, row-
  pointer and column arrays), not the values -- tuned configurations
  depend only on structure;
* entries are versioned; loading an entry written by an incompatible
  schema returns a miss instead of an error.

Typical use::

    store = TuningStore("~/.cache/repro-tuning.json")
    point = store.get(A, device) or tune_and_put(store, A, device)
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..errors import TuningError
from ..gpu.device import DeviceSpec
from ..kernels.config import YaSpMVConfig
from ..util import as_csr
from .parameters import TuningPoint

__all__ = ["matrix_fingerprint", "TuningStore"]

_SCHEMA_VERSION = 1


def matrix_fingerprint(matrix) -> str:
    """Structural hash of a sparse matrix (values excluded)."""
    csr = as_csr(matrix)
    h = hashlib.sha256()
    h.update(np.asarray(csr.shape, dtype=np.int64).tobytes())
    h.update(np.int64(csr.nnz).tobytes())
    h.update(np.ascontiguousarray(csr.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(csr.indices, dtype=np.int64).tobytes())
    return h.hexdigest()[:24]


def _encode(point: TuningPoint) -> dict:
    return {
        "version": _SCHEMA_VERSION,
        "block_height": point.block_height,
        "block_width": point.block_width,
        "bit_word": point.bit_word,
        "col_compress": point.col_compress,
        "slice_count": point.slice_count,
        "kernel": asdict(point.kernel),
    }


def _decode(blob: dict) -> TuningPoint | None:
    if blob.get("version") != _SCHEMA_VERSION:
        return None
    try:
        return TuningPoint(
            block_height=blob["block_height"],
            block_width=blob["block_width"],
            bit_word=blob["bit_word"],
            col_compress=blob["col_compress"],
            slice_count=blob["slice_count"],
            kernel=YaSpMVConfig(**blob["kernel"]),
        )
    except Exception:
        # Malformed or future-version entry: treat as a cache miss.
        return None


class TuningStore:
    """JSON-backed store of tuned configurations.

    The file is read lazily and written eagerly (every ``put`` persists),
    so concurrent readers see a consistent snapshot and a crashed run
    loses at most nothing.
    """

    def __init__(self, path):
        self.path = Path(path).expanduser()
        self._entries: dict[str, dict] | None = None
        #: Lookup statistics for this store instance.  An *invalidation*
        #: is a lookup that found an entry but could not use it (schema
        #: version mismatch or malformed payload); it also counts as a
        #: miss, so ``hits + misses`` equals total lookups.
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------ #

    def _key(self, matrix, device: DeviceSpec | str) -> str:
        dev = device if isinstance(device, str) else device.name
        return f"{dev}:{matrix_fingerprint(matrix)}"

    def _load(self) -> dict[str, dict]:
        if self._entries is None:
            if self.path.exists():
                try:
                    self._entries = json.loads(self.path.read_text())
                except (OSError, json.JSONDecodeError):
                    self._entries = {}
            else:
                self._entries = {}
        return self._entries

    # ------------------------------------------------------------------ #

    def get(self, matrix, device: DeviceSpec | str) -> TuningPoint | None:
        """Stored configuration for (matrix structure, device), or None."""
        blob = self._load().get(self._key(matrix, device))
        if blob is None:
            self.misses += 1
            return None
        point = _decode(blob)
        if point is None:
            self.invalidations += 1
            self.misses += 1
            return None
        self.hits += 1
        return point

    def put(self, matrix, device: DeviceSpec | str, point: TuningPoint) -> None:
        """Persist a configuration (overwrites any previous entry)."""
        entries = self._load()
        entries[self._key(matrix, device)] = _encode(point)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(entries, indent=1, sort_keys=True))
        tmp.replace(self.path)

    def __len__(self) -> int:
        return len(self._load())
