"""Search-space enumeration and the paper's pruning heuristics.

Section 4 prunes Table 1's space with four accelerations, reproduced in
:func:`pruned_space`:

1. block dimensions: keep only the 4 with the smallest BCCOO memory
   footprints (footprint is the dominant cost driver);
2. always use the texture cache for the multiplied vector;
3. always use offline transpose;
4. strategy 2 result-cache size limited to {1, 2} x workgroup size, and
   strategy 1 restricted to registers only (``shm_size = 0``).

We add one structural heuristic the paper folds into its search order:
BCCOO+ slice counts are explored only when the multiplied vector is too
large for the texture cache (the locality win can exist at all) -- this
is what makes the tuner pick BCCOO+ for LP (1.1M columns) and plain
BCCOO elsewhere, matching section 6.

:func:`exhaustive_space` enumerates the unpruned Table 1 axes (optionally
restricted, since the full cross product is combinatorially large).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..formats.footprint import bccoo_block_candidates
from ..gpu.device import DeviceSpec
from ..kernels.config import YaSpMVConfig
from ..util import as_csr
from .parameters import (
    BIT_WORDS,
    BLOCK_HEIGHTS,
    BLOCK_WIDTHS,
    SLICE_COUNTS,
    WORKGROUP_SIZES,
    TuningPoint,
)

__all__ = [
    "pruned_space",
    "exhaustive_space",
    "candidate_slice_counts",
    "base_format_points",
]

#: Per-thread tile sizes explored for strategy 2 / register counts for
#: strategy 1 (the paper sweeps these fine-grained; we keep the coverage
#: that spans the trade-off).
_TILE_SIZES: tuple[int, ...] = (8, 16, 32)
_REG_SIZES: tuple[int, ...] = (8, 16, 32)
_CACHE_MULTIPLES: tuple[int, ...] = (1, 2)


def candidate_slice_counts(matrix, device: DeviceSpec) -> tuple[int, ...]:
    """Slice counts worth trying: (1,) unless the vector overflows cache.

    The vector occupies ``ncols * 4`` bytes; when one texture cache
    cannot hold it, vertical slicing can raise the hit rate, so BCCOO+
    joins the search with slice widths bringing each slice's vector
    window near the cache size.
    """
    ncols = as_csr(matrix).shape[1]
    vector_bytes = ncols * 4
    if vector_bytes <= device.tex_cache_bytes:
        return (1,)
    wanted = vector_bytes / device.tex_cache_bytes
    counts = [1]
    for s in SLICE_COUNTS[1:]:
        counts.append(s)
        if s >= wanted:
            break
    return tuple(counts)


def base_format_points(
    workgroup_sizes: Iterable[int],
    pruned: bool = True,
) -> Iterator[TuningPoint]:
    """Candidates for the related-work formats (merge-path CSR, RG-CSR).

    Neither format has blocking, bit-flag, column-compression or slicing
    axes, so their sub-space is just the launch geometry: one point per
    (format, workgroup size) -- plus the texture toggle when unpruned.
    """
    textures = (True,) if pruned else (True, False)
    for base in ("merge_csr", "rgcsr"):
        for wg in workgroup_sizes:
            for texture in textures:
                yield TuningPoint(
                    base_format=base,
                    kernel=YaSpMVConfig(
                        workgroup_size=wg, use_texture=texture
                    ),
                )


def _kernel_configs(
    workgroup_sizes: Iterable[int],
    pruned: bool,
) -> Iterator[YaSpMVConfig]:
    transposes = ("offline",) if pruned else ("offline", "online")
    textures = (True,) if pruned else (True, False)
    shm_sizes = (0,) if pruned else (0, 8)
    caches = _CACHE_MULTIPLES if pruned else (1, 2, 4)
    for wg in workgroup_sizes:
        for transpose in transposes:
            for texture in textures:
                for reg in _REG_SIZES:
                    for shm in shm_sizes:
                        yield YaSpMVConfig(
                            workgroup_size=wg,
                            strategy=1,
                            reg_size=reg,
                            shm_size=shm,
                            transpose=transpose,
                            use_texture=texture,
                        )
                for tile in _TILE_SIZES:
                    for cache in caches:
                        yield YaSpMVConfig(
                            workgroup_size=wg,
                            strategy=2,
                            tile_size=tile,
                            result_cache_multiple=cache,
                            transpose=transpose,
                            use_texture=texture,
                        )


def pruned_space(
    matrix,
    device: DeviceSpec,
    keep_block_dims: int = 4,
    workgroup_sizes: Iterable[int] = WORKGROUP_SIZES,
    bit_words: Iterable[str] = BIT_WORDS,
) -> Iterator[TuningPoint]:
    """The accelerated search of section 4.

    ``workgroup_sizes`` / ``bit_words`` allow time-boxed callers (the
    benchmark harness) to trim the remaining axes further; the defaults
    are the full Table 1 values.
    """
    blocks = bccoo_block_candidates(matrix, keep=keep_block_dims)
    slices = candidate_slice_counts(matrix, device)
    for h, w, _bytes in blocks:
        for word in bit_words:
            for s in slices:
                for cfg in _kernel_configs(workgroup_sizes, pruned=True):
                    yield TuningPoint(
                        block_height=h,
                        block_width=w,
                        bit_word=word,
                        col_compress=True,
                        slice_count=s,
                        kernel=cfg,
                    )
    yield from base_format_points(workgroup_sizes, pruned=True)


def exhaustive_space(
    matrix,
    device: DeviceSpec,
    workgroup_sizes: Iterable[int] = WORKGROUP_SIZES,
    block_heights: Iterable[int] = BLOCK_HEIGHTS,
    block_widths: Iterable[int] = BLOCK_WIDTHS,
    bit_words: Iterable[str] = BIT_WORDS,
    slice_counts: Iterable[int] | None = None,
) -> Iterator[TuningPoint]:
    """Unpruned Table 1 enumeration (restrictable per axis).

    The benchmark comparing pruned vs exhaustive tuning restricts the
    axes to keep the cross product tractable and documents the
    restriction; the generator itself supports the full space.
    """
    if slice_counts is None:
        slice_counts = candidate_slice_counts(matrix, device)
    for h in block_heights:
        for w in block_widths:
            for word in bit_words:
                for compress in (True, False):
                    for s in slice_counts:
                        for cfg in _kernel_configs(workgroup_sizes, pruned=False):
                            yield TuningPoint(
                                block_height=h,
                                block_width=w,
                                bit_word=word,
                                col_compress=compress,
                                slice_count=s,
                                kernel=cfg,
                            )
    yield from base_format_points(workgroup_sizes, pruned=False)
