"""The auto-tuner: evaluate candidate configurations, keep the best.

Mirrors the paper's framework (section 4): enumerate a (pruned or
exhaustive) space of :class:`TuningPoint` candidates, "compile" each
kernel through the plan cache, execute it on the simulated device, and
rank by estimated execution time.  The tuner reports wall-clock spent,
simulated compile time, cache statistics and the full evaluation history
so the benchmark can reproduce the section 4 numbers (pruned-vs-optimal
quality gap, tuning cost).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError, TuningError
from ..gpu.device import DeviceSpec
from ..gpu.timing import TimingBreakdown, TimingModel
from ..kernels.yaspmv import YaSpMVKernel
from ..util import as_csr
from .cache import FormatCache, KernelPlanCache
from .parameters import TuningPoint
from .space import exhaustive_space, pruned_space

__all__ = ["Evaluation", "TuningResult", "AutoTuner"]


@dataclass(frozen=True)
class Evaluation:
    """One evaluated candidate."""

    point: TuningPoint
    time_s: float
    gflops: float
    breakdown: TimingBreakdown


@dataclass
class TuningResult:
    """Outcome of one tuning run."""

    best: Evaluation
    evaluated: int
    skipped: int
    wall_seconds: float
    simulated_compile_s: float
    plan_cache_hits: int
    plan_cache_misses: int
    history: list[Evaluation] = field(default_factory=list)
    #: Per-reason quarantine counters: error class name -> candidates
    #: skipped for that reason (the skip-reason taxonomy; ``skipped``
    #: stays the total).
    skip_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def best_point(self) -> TuningPoint:
        return self.best.point

    def top(self, k: int = 5) -> list[Evaluation]:
        """The k fastest evaluations, best first."""
        return sorted(self.history, key=lambda e: e.time_s)[:k]


class AutoTuner:
    """Searches the Table 1 space for one matrix on one device.

    Parameters
    ----------
    device:
        Target :class:`DeviceSpec`.
    mode:
        ``"pruned"`` (the section 4 accelerated search, default) or
        ``"exhaustive"``.
    plan_cache:
        Share one :class:`KernelPlanCache` across matrices to reproduce
        the paper's cross-matrix kernel reuse.
    keep_history:
        Retain every evaluation (needed by the tuning benchmarks;
        disable to save memory on huge spaces).
    """

    def __init__(
        self,
        device: DeviceSpec,
        mode: str = "pruned",
        plan_cache: KernelPlanCache | None = None,
        keep_history: bool = True,
        exhaustive_kwargs: dict | None = None,
        pruned_kwargs: dict | None = None,
    ):
        if mode not in ("pruned", "exhaustive"):
            raise TuningError(f"mode must be 'pruned' or 'exhaustive', got {mode!r}")
        self.device = device
        self.mode = mode
        self.plan_cache = plan_cache if plan_cache is not None else KernelPlanCache()
        self.keep_history = keep_history
        self.exhaustive_kwargs = exhaustive_kwargs or {}
        #: Extra arguments for :func:`pruned_space` (e.g. a smaller
        #: ``keep_block_dims`` for time-boxed benchmark runs).
        self.pruned_kwargs = pruned_kwargs or {}
        self._kernel = YaSpMVKernel()
        self._timing = TimingModel(device)

    def tune(self, matrix, x: np.ndarray | None = None) -> TuningResult:
        """Search; returns the ranked result.

        ``x`` defaults to an all-ones vector -- only the cost profile
        depends on it (via gather locality), not the ranking mechanics.
        """
        csr = as_csr(matrix)
        if x is None:
            x = np.ones(csr.shape[1], dtype=np.float64)

        if self.mode == "pruned":
            space = pruned_space(csr, self.device, **self.pruned_kwargs)
        else:
            space = exhaustive_space(csr, self.device, **self.exhaustive_kwargs)

        fmt_cache = FormatCache(csr)
        t0 = time.perf_counter()
        best: Evaluation | None = None
        history: list[Evaluation] = []
        evaluated = 0
        skipped = 0
        nnz = int(csr.nnz)

        skip_reasons: dict[str, int] = {}

        def quarantine(exc: ReproError) -> None:
            # Per-candidate error quarantine: a failing candidate is
            # skipped and *counted by reason* instead of aborting (or
            # silently swallowing arbitrary exceptions -- genuine bugs
            # like TypeError still propagate).
            nonlocal skipped
            skipped += 1
            name = type(exc).__name__
            skip_reasons[name] = skip_reasons.get(name, 0) + 1

        for point in space:
            try:
                fmt = fmt_cache.get(point)
            except ReproError as exc:
                quarantine(exc)
                continue
            self.plan_cache.get(point)  # compile (or reuse) the plan
            try:
                result = self._kernel.run(fmt, x, self.device, config=point.kernel)
            except ReproError as exc:
                quarantine(exc)
                continue
            breakdown = self._timing.estimate(result.stats)
            ev = Evaluation(
                point=point,
                time_s=breakdown.t_total,
                gflops=breakdown.gflops(nnz),
                breakdown=breakdown,
            )
            evaluated += 1
            if self.keep_history:
                history.append(ev)
            if best is None or ev.time_s < best.time_s:
                best = ev

        if best is None:
            raise TuningError("no tuning candidate was evaluable for this matrix")

        return TuningResult(
            best=best,
            evaluated=evaluated,
            skipped=skipped,
            wall_seconds=time.perf_counter() - t0,
            simulated_compile_s=self.plan_cache.simulated_compile_time_s,
            plan_cache_hits=self.plan_cache.hits,
            plan_cache_misses=self.plan_cache.misses,
            history=history,
            skip_reasons=skip_reasons,
        )
