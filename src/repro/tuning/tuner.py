"""The auto-tuner: evaluate candidate configurations, keep the best.

Mirrors the paper's framework (section 4): enumerate a (pruned or
exhaustive) space of :class:`TuningPoint` candidates, "compile" each
kernel through the plan cache, execute it on the simulated device, and
rank by estimated execution time.  The tuner reports wall-clock spent,
simulated compile time, cache statistics and the full evaluation history
so the benchmark can reproduce the section 4 numbers (pruned-vs-optimal
quality gap, tuning cost).

The search can fan out over a process (or thread) pool -- see
:mod:`repro.tuning.parallel` -- and is guaranteed to return the same
result as the serial walk: identical ``best_point``, identical
evaluation set, identical skip-reason counters and identical shared
plan-cache state.  ``workers`` only changes the wall clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..backends.base import get_backend
from ..errors import DeadlineExceeded, ReproError, TuningError
from ..fault.retry import Deadline, RetryPolicy
from ..gpu.device import DeviceSpec
from ..gpu.timing import TimingBreakdown
from ..obs import NULL_OBSERVER, obs_scope
from ..util import as_csr
from .cache import FormatCache, KernelPlanCache
from .checkpoint import TuningCheckpoint
from .parallel import (
    EXECUTORS,
    CandidateOutcome,
    ParallelReport,
    evaluate_candidates,
    run_parallel,
)
from .parameters import TuningPoint
from .persistence import matrix_fingerprint
from .space import exhaustive_space, pruned_space

__all__ = ["Evaluation", "TuningResult", "AutoTuner"]


@dataclass(frozen=True)
class Evaluation:
    """One evaluated candidate."""

    point: TuningPoint
    time_s: float
    gflops: float
    breakdown: TimingBreakdown


@dataclass
class TuningResult:
    """Outcome of one tuning run (or of a persistent-store hit).

    A search produces ``best``/``history`` and per-run cache deltas; a
    warm start served from a :class:`~repro.tuning.TuningStore` carries
    only the winning ``point`` (``evaluated == 0``, ``store_hit`` set)
    -- ``best_point`` works for both.
    """

    best: Evaluation | None = None
    evaluated: int = 0
    skipped: int = 0
    wall_seconds: float = 0.0
    simulated_compile_s: float = 0.0
    #: Cumulative counters of the (possibly shared) plan cache after the
    #: run -- kept for cross-matrix reuse accounting.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Plan-cache hits/misses incurred *by this run alone* (deltas, so
    #: they stay meaningful when one cache is shared across matrices).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Pool width the search ran with (1 == serial).
    workers: int = 1
    #: Persistent-store bookkeeping: was a store consulted, did it serve
    #: the point, and how many stale entries were invalidated.
    store_checked: bool = False
    store_hit: bool = False
    store_invalidations: int = 0
    #: Winning point for store-served results (no :class:`Evaluation`).
    point: TuningPoint | None = None
    history: list[Evaluation] = field(default_factory=list)
    #: Per-reason quarantine counters: error class name -> candidates
    #: skipped for that reason (the skip-reason taxonomy; ``skipped``
    #: stays the total).
    skip_reasons: dict[str, int] = field(default_factory=dict)
    #: The deadline expired before the full space was walked: ``best``
    #: is the best-so-far over the completed prefix, and a later
    #: checkpoint resume completes the search.
    partial: bool = False
    #: Candidates restored from a :class:`TuningCheckpoint` instead of
    #: re-evaluated (0 for fresh runs).
    resumed: int = 0

    @property
    def best_point(self) -> TuningPoint:
        if self.best is not None:
            return self.best.point
        if self.point is not None:
            return self.point
        raise TuningError("TuningResult holds neither an evaluation nor a point")

    @classmethod
    def from_store(
        cls, point: TuningPoint, *, wall_seconds: float = 0.0, invalidations: int = 0
    ) -> "TuningResult":
        """A warm-start result: the store served ``point``, zero kernel
        evaluations were performed."""
        return cls(
            point=point,
            wall_seconds=wall_seconds,
            store_checked=True,
            store_hit=True,
            store_invalidations=invalidations,
        )

    def top(self, k: int = 5) -> list[Evaluation]:
        """The k fastest evaluations, best first."""
        return sorted(self.history, key=lambda e: e.time_s)[:k]

    # -- the shared result protocol (see SpMVResult for the other half)

    def to_dict(self) -> dict:
        """JSON-able snapshot -- the exporters' and CLI's interchange
        form, so callers stop reaching into dataclass internals."""
        bp = self.best_point
        out = {
            "kind": "tuning_result",
            "evaluated": self.evaluated,
            "skipped": self.skipped,
            "wall_seconds": self.wall_seconds,
            "simulated_compile_s": self.simulated_compile_s,
            "workers": self.workers,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "store_checked": self.store_checked,
            "store_hit": self.store_hit,
            "store_invalidations": self.store_invalidations,
            "skip_reasons": dict(self.skip_reasons),
            "partial": self.partial,
            "resumed": self.resumed,
            "best_point": {
                "format": bp.format_name,
                "block_height": bp.block_height,
                "block_width": bp.block_width,
                "bit_word": bp.bit_word,
                "slice_count": bp.slice_count,
                "col_compress": bp.col_compress,
                "strategy": bp.kernel.strategy,
                "workgroup_size": bp.kernel.workgroup_size,
                "tile": bp.kernel.effective_tile,
            },
        }
        if self.best is not None:
            out["best"] = {
                "time_s": self.best.time_s,
                "gflops": self.best.gflops,
            }
        return out

    def describe_point(self) -> str:
        """One-line description of the winning configuration."""
        bp = self.best_point
        return (
            f"{bp.format_name} {bp.block_height}x{bp.block_width} "
            f"word={bp.bit_word} slices={bp.slice_count} "
            f"strategy={bp.kernel.strategy} wg={bp.kernel.workgroup_size} "
            f"tile={bp.kernel.effective_tile}"
        )

    def summary(self) -> str:
        """Human-readable account of the run (or the warm start)."""
        if self.store_hit and self.evaluated == 0:
            return (
                "warm start from tuning store (0 configurations evaluated)\n"
                f"best: {self.describe_point()}"
            )
        workers = f", {self.workers} workers" if self.workers > 1 else ""
        resumed = f", {self.resumed} resumed" if self.resumed else ""
        lines = [
            f"evaluated {self.evaluated} configurations in "
            f"{self.wall_seconds:.1f}s ({self.skipped} skipped{workers}{resumed})",
            f"best: {self.describe_point()}",
        ]
        if self.partial:
            lines.append(
                "PARTIAL: deadline expired mid-search; best is best-so-far "
                "(resume from the checkpoint to finish)"
            )
        if self.best is not None:
            lines.append(
                f"estimated: {self.best.gflops:.2f} GFLOPS "
                f"({self.best.time_s * 1e6:.1f} us)"
            )
        return "\n".join(lines)


class AutoTuner:
    """Searches the Table 1 space for one matrix on one device.

    Parameters
    ----------
    device:
        Target :class:`DeviceSpec`.
    mode:
        ``"pruned"`` (the section 4 accelerated search, default) or
        ``"exhaustive"``.
    plan_cache:
        Share one :class:`KernelPlanCache` across matrices to reproduce
        the paper's cross-matrix kernel reuse.
    keep_history:
        Retain every evaluation (needed by the tuning benchmarks;
        disable to save memory on huge spaces).
    workers:
        Pool width for the candidate fan-out.  ``1`` (default) runs the
        classic serial walk in-process; ``N > 1`` spreads format-affine
        candidate chunks over ``N`` workers.  The result is bit-identical
        either way.
    executor:
        ``"process"`` (default, fork-based when available) or
        ``"thread"``.  Only consulted when ``workers > 1``.
    observer:
        Optional :class:`repro.obs.Observer`: the search runs under a
        ``tuner.tune`` span with one ``tuner.candidate`` child per
        enumerated configuration (matching ``TuningResult.history``)
        plus evaluation/prune/plan-cache counters.
    deadline:
        Wall-clock budget for each :meth:`tune` call -- seconds, a
        :class:`~repro.fault.Deadline`, or ``None`` (unlimited).  A
        number starts ticking when :meth:`tune` starts, not at
        construction.  Expiry stops the search cooperatively: the
        result carries the completed prefix with ``partial=True``.
    checkpoint:
        Crash-safe journal -- a :class:`TuningCheckpoint`, a path, or
        ``None``.  Completed candidates are journaled as they finish
        and skipped on the next :meth:`tune` against the same (matrix,
        device, mode, space); the resumed result is bit-identical to an
        uninterrupted run.
    retry:
        :class:`~repro.fault.RetryPolicy` governing pool rebuilds after
        worker crashes (parallel runs only); ``None`` uses the default
        (two rebuilds, then serial fallback).
    backend:
        Name of the :mod:`repro.backends` execution backend candidates
        are timed on (default ``"faithful"``).  Tune on the backend the
        prepared matrix will serve on, so the ranking and production
        agree; the name (not the instance) crosses into worker
        processes, which resolve it from their own registry.
    share_operand:
        Publish the CSR operand's buffers once in a
        :class:`~repro.core.shm.SharedArena` when fanning out
        (``workers > 1``); worker payloads then carry a descriptor
        instead of a pickled matrix copy, and every worker maps the
        same physical pages.  Serial runs ignore it.
    """

    def __init__(
        self,
        device: DeviceSpec,
        mode: str = "pruned",
        plan_cache: KernelPlanCache | None = None,
        keep_history: bool = True,
        exhaustive_kwargs: dict | None = None,
        pruned_kwargs: dict | None = None,
        workers: int = 1,
        executor: str = "process",
        observer=None,
        deadline: "Deadline | float | None" = None,
        checkpoint: "TuningCheckpoint | str | None" = None,
        retry: RetryPolicy | None = None,
        backend: str = "faithful",
        share_operand: bool = False,
    ):
        if mode not in ("pruned", "exhaustive"):
            raise TuningError(f"mode must be 'pruned' or 'exhaustive', got {mode!r}")
        if workers < 1:
            raise TuningError(f"workers must be >= 1, got {workers}")
        if executor not in EXECUTORS:
            raise TuningError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        self.device = device
        self.mode = mode
        self.plan_cache = plan_cache if plan_cache is not None else KernelPlanCache()
        self.keep_history = keep_history
        self.exhaustive_kwargs = exhaustive_kwargs or {}
        #: Extra arguments for :func:`pruned_space` (e.g. a smaller
        #: ``keep_block_dims`` for time-boxed benchmark runs).
        self.pruned_kwargs = pruned_kwargs or {}
        self.workers = workers
        self.executor = executor
        self.observer = observer if observer is not None else NULL_OBSERVER
        #: Raw deadline spec; coerced per :meth:`tune` call so a numeric
        #: budget restarts for every search.
        self.deadline = deadline
        self.checkpoint = TuningCheckpoint.coerce(checkpoint)
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise TuningError(
                f"retry must be a RetryPolicy or None, got {type(retry).__name__}"
            )
        self.retry = retry
        if not isinstance(backend, str):
            raise TuningError(
                "backend must be a backend *name* (it crosses process "
                f"boundaries), got {type(backend).__name__}"
            )
        get_backend(backend)  # fail fast on unknown names
        self.backend = backend
        self.share_operand = bool(share_operand)

    def tune(self, matrix, x: np.ndarray | None = None) -> TuningResult:
        """Search; returns the ranked result.

        ``x`` defaults to an all-ones vector -- only the cost profile
        depends on it (via gather locality), not the ranking mechanics.
        """
        obs = self.observer
        with obs_scope(obs), obs.span(
            "tuner.tune",
            mode=self.mode,
            workers=self.workers,
            device=self.device.name,
            backend=self.backend,
        ) as tune_span:
            csr = as_csr(matrix)
            if x is None:
                x = np.ones(csr.shape[1], dtype=np.float64)

            with obs.span("tuner.enumerate", mode=self.mode) as enum_span:
                if self.mode == "pruned":
                    space = pruned_space(csr, self.device, **self.pruned_kwargs)
                else:
                    space = exhaustive_space(
                        csr, self.device, **self.exhaustive_kwargs
                    )
                items = list(enumerate(space))
                enum_span.set(candidates=len(items))

            t0 = time.perf_counter()
            hits0 = self.plan_cache.hits
            misses0 = self.plan_cache.misses

            deadline = Deadline.coerce(self.deadline)
            checkpoint = self.checkpoint
            restored: dict[int, CandidateOutcome] = {}
            if checkpoint is not None:
                restored = checkpoint.begin(
                    fingerprint=matrix_fingerprint(csr),
                    device=self.device.name,
                    mode=self.mode,
                    n_candidates=len(items),
                )
            todo = [it for it in items if it[0] not in restored]
            report = ParallelReport()

            # Candidate evaluation runs under a muted observer: worker
            # processes cannot share this observer, so letting the serial
            # (or thread) path emit per-kernel spans would make the trace
            # depend on the executor.  The merge below records one
            # ``tuner.candidate`` span per outcome instead -- identical
            # for every executor.
            try:
                if self.workers == 1 and checkpoint is None:
                    # Serial walk straight through the shared plan cache --
                    # no replay needed, the lookups *are* the canonical
                    # order.
                    with obs_scope(NULL_OBSERVER):
                        outcomes = evaluate_candidates(
                            items,
                            csr,
                            x,
                            self.device,
                            FormatCache(csr),
                            self.plan_cache,
                            deadline=deadline,
                            backend=self.backend,
                        )
                elif self.workers == 1:
                    # Serial with a checkpoint: evaluate against a
                    # throwaway plan cache (like a worker would), journal
                    # each outcome, and replay the lookups below so the
                    # shared cache sees the canonical order -- including
                    # the restored candidates a crashed run already paid
                    # for.
                    local = KernelPlanCache(
                        compile_cost_s=self.plan_cache.compile_cost_s
                    )
                    with obs_scope(NULL_OBSERVER):
                        new = evaluate_candidates(
                            todo,
                            csr,
                            x,
                            self.device,
                            FormatCache(csr),
                            local,
                            deadline=deadline,
                            on_outcome=checkpoint.append,
                            backend=self.backend,
                        )
                    outcomes = sorted(
                        list(restored.values()) + new, key=lambda o: o.index
                    )
                    for outcome in outcomes:
                        if not outcome.format_skipped:
                            self.plan_cache.get(outcome.point)
                else:
                    on_chunk = (
                        (lambda cr: checkpoint.append_many(cr.outcomes))
                        if checkpoint is not None
                        else None
                    )
                    with obs_scope(NULL_OBSERVER):
                        new = run_parallel(
                            todo,
                            csr,
                            x,
                            self.device,
                            workers=self.workers,
                            executor=self.executor,
                            compile_cost=self.plan_cache.compile_cost_s,
                            deadline=deadline,
                            retry=self.retry,
                            on_chunk=on_chunk,
                            report=report,
                            backend=self.backend,
                            share_operand=self.share_operand,
                        )
                    # Workers compiled against throwaway caches; replay the
                    # plan lookups here, in enumeration order, so the shared
                    # cache ends up in the exact state a serial run leaves
                    # behind.
                    outcomes = sorted(
                        list(restored.values()) + new, key=lambda o: o.index
                    )
                    for outcome in outcomes:
                        if not outcome.format_skipped:
                            self.plan_cache.get(outcome.point)
            finally:
                if checkpoint is not None:
                    checkpoint.close()

            result = self._merge(
                outcomes,
                t0,
                hits0,
                misses0,
                partial=len(outcomes) < len(items),
                resumed=len(restored),
            )
            tune_span.set(
                evaluated=result.evaluated,
                skipped=result.skipped,
                best_time_s=result.best.time_s,
                best_gflops=result.best.gflops,
                partial=result.partial,
                resumed=result.resumed,
            )
            obs.counter("tuner.evaluations", "candidates evaluated").inc(
                result.evaluated
            )
            obs.counter("tuner.prunes", "candidates quarantined/skipped").inc(
                result.skipped
            )
            obs.counter("tuner.plan_cache.hits", "kernel-plan cache hits").inc(
                result.cache_hits
            )
            obs.counter("tuner.plan_cache.misses", "kernel-plan cache misses").inc(
                result.cache_misses
            )
            if checkpoint is not None:
                obs.counter(
                    "tuner.resumed_candidates",
                    "candidates restored from a checkpoint instead of re-run",
                ).inc(result.resumed)
            if report.shm_attaches:
                obs.counter(
                    "tuner.shm.attaches",
                    "worker attaches to the shared operand arena",
                ).inc(report.shm_attaches)
            if report.lost_chunks or report.pool_rebuilds:
                obs.counter(
                    "tuner.worker_crashes", "tuning chunks lost to dead workers"
                ).inc(report.lost_chunks)
                obs.counter(
                    "retry.attempts", "retry attempts (pool rebuilds included)"
                ).inc(report.pool_rebuilds)
            if result.partial:
                obs.counter(
                    "tuner.deadline_expiries",
                    "tuning runs stopped early by their deadline",
                ).inc()
            return result

    def _merge(
        self,
        outcomes: list[CandidateOutcome],
        t0: float,
        hits0: int,
        misses0: int,
        partial: bool = False,
        resumed: int = 0,
    ) -> TuningResult:
        """Fold index-ordered outcomes into a :class:`TuningResult`.

        Shared by the serial and parallel paths: walking the outcomes in
        enumeration order reproduces the serial loop's tie-breaking (the
        first strictly faster candidate wins) and its skip-reason
        insertion order.  One ``tuner.candidate`` span is recorded per
        outcome -- at merge time, so the trace is identical whether the
        evaluation ran serially, on threads, or in worker processes
        (which cannot share the observer); the measured per-candidate
        wall clock rides along as the ``wall_s`` attribute.
        """
        obs = self.observer
        best: Evaluation | None = None
        history: list[Evaluation] = []
        evaluated = 0
        skipped = 0
        skip_reasons: dict[str, int] = {}

        for outcome in outcomes:
            candidate = obs.span(
                "tuner.candidate",
                index=outcome.index,
                point=str(outcome.point.format_key()),
                wall_s=outcome.wall_s,
            )
            if outcome.evaluation is None:
                skipped += 1
                reason = outcome.skip_reason or "ReproError"
                skip_reasons[reason] = skip_reasons.get(reason, 0) + 1
                with candidate as csp:
                    csp.set(skipped=True, skip_reason=reason)
                continue
            ev: Evaluation = outcome.evaluation
            evaluated += 1
            if self.keep_history:
                history.append(ev)
            if best is None or ev.time_s < best.time_s:
                best = ev
            with candidate as csp:
                csp.set(sim_time_s=ev.time_s, sim_gflops=ev.gflops)

        if best is None:
            if partial:
                raise DeadlineExceeded(
                    "the tuning deadline expired before any candidate "
                    "finished -- nothing to return, not even a partial best",
                    label="tuner.tune",
                )
            raise TuningError("no tuning candidate was evaluable for this matrix")

        return TuningResult(
            best=best,
            evaluated=evaluated,
            skipped=skipped,
            wall_seconds=time.perf_counter() - t0,
            simulated_compile_s=self.plan_cache.simulated_compile_time_s,
            plan_cache_hits=self.plan_cache.hits,
            plan_cache_misses=self.plan_cache.misses,
            cache_hits=self.plan_cache.hits - hits0,
            cache_misses=self.plan_cache.misses - misses0,
            workers=self.workers,
            history=history,
            skip_reasons=skip_reasons,
            partial=partial,
            resumed=resumed,
        )
