"""The auto-tuner: evaluate candidate configurations, keep the best.

Mirrors the paper's framework (section 4): enumerate a (pruned or
exhaustive) space of :class:`TuningPoint` candidates, "compile" each
kernel through the plan cache, execute it on the simulated device, and
rank by estimated execution time.  The tuner reports wall-clock spent,
simulated compile time, cache statistics and the full evaluation history
so the benchmark can reproduce the section 4 numbers (pruned-vs-optimal
quality gap, tuning cost).

The search can fan out over a process (or thread) pool -- see
:mod:`repro.tuning.parallel` -- and is guaranteed to return the same
result as the serial walk: identical ``best_point``, identical
evaluation set, identical skip-reason counters and identical shared
plan-cache state.  ``workers`` only changes the wall clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError, TuningError
from ..gpu.device import DeviceSpec
from ..gpu.timing import TimingBreakdown
from ..util import as_csr
from .cache import FormatCache, KernelPlanCache
from .parallel import EXECUTORS, CandidateOutcome, evaluate_candidates, run_parallel
from .parameters import TuningPoint
from .space import exhaustive_space, pruned_space

__all__ = ["Evaluation", "TuningResult", "AutoTuner"]


@dataclass(frozen=True)
class Evaluation:
    """One evaluated candidate."""

    point: TuningPoint
    time_s: float
    gflops: float
    breakdown: TimingBreakdown


@dataclass
class TuningResult:
    """Outcome of one tuning run (or of a persistent-store hit).

    A search produces ``best``/``history`` and per-run cache deltas; a
    warm start served from a :class:`~repro.tuning.TuningStore` carries
    only the winning ``point`` (``evaluated == 0``, ``store_hit`` set)
    -- ``best_point`` works for both.
    """

    best: Evaluation | None = None
    evaluated: int = 0
    skipped: int = 0
    wall_seconds: float = 0.0
    simulated_compile_s: float = 0.0
    #: Cumulative counters of the (possibly shared) plan cache after the
    #: run -- kept for cross-matrix reuse accounting.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Plan-cache hits/misses incurred *by this run alone* (deltas, so
    #: they stay meaningful when one cache is shared across matrices).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Pool width the search ran with (1 == serial).
    workers: int = 1
    #: Persistent-store bookkeeping: was a store consulted, did it serve
    #: the point, and how many stale entries were invalidated.
    store_checked: bool = False
    store_hit: bool = False
    store_invalidations: int = 0
    #: Winning point for store-served results (no :class:`Evaluation`).
    point: TuningPoint | None = None
    history: list[Evaluation] = field(default_factory=list)
    #: Per-reason quarantine counters: error class name -> candidates
    #: skipped for that reason (the skip-reason taxonomy; ``skipped``
    #: stays the total).
    skip_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def best_point(self) -> TuningPoint:
        if self.best is not None:
            return self.best.point
        if self.point is not None:
            return self.point
        raise TuningError("TuningResult holds neither an evaluation nor a point")

    @classmethod
    def from_store(
        cls, point: TuningPoint, *, wall_seconds: float = 0.0, invalidations: int = 0
    ) -> "TuningResult":
        """A warm-start result: the store served ``point``, zero kernel
        evaluations were performed."""
        return cls(
            point=point,
            wall_seconds=wall_seconds,
            store_checked=True,
            store_hit=True,
            store_invalidations=invalidations,
        )

    def top(self, k: int = 5) -> list[Evaluation]:
        """The k fastest evaluations, best first."""
        return sorted(self.history, key=lambda e: e.time_s)[:k]


class AutoTuner:
    """Searches the Table 1 space for one matrix on one device.

    Parameters
    ----------
    device:
        Target :class:`DeviceSpec`.
    mode:
        ``"pruned"`` (the section 4 accelerated search, default) or
        ``"exhaustive"``.
    plan_cache:
        Share one :class:`KernelPlanCache` across matrices to reproduce
        the paper's cross-matrix kernel reuse.
    keep_history:
        Retain every evaluation (needed by the tuning benchmarks;
        disable to save memory on huge spaces).
    workers:
        Pool width for the candidate fan-out.  ``1`` (default) runs the
        classic serial walk in-process; ``N > 1`` spreads format-affine
        candidate chunks over ``N`` workers.  The result is bit-identical
        either way.
    executor:
        ``"process"`` (default, fork-based when available) or
        ``"thread"``.  Only consulted when ``workers > 1``.
    """

    def __init__(
        self,
        device: DeviceSpec,
        mode: str = "pruned",
        plan_cache: KernelPlanCache | None = None,
        keep_history: bool = True,
        exhaustive_kwargs: dict | None = None,
        pruned_kwargs: dict | None = None,
        workers: int = 1,
        executor: str = "process",
    ):
        if mode not in ("pruned", "exhaustive"):
            raise TuningError(f"mode must be 'pruned' or 'exhaustive', got {mode!r}")
        if workers < 1:
            raise TuningError(f"workers must be >= 1, got {workers}")
        if executor not in EXECUTORS:
            raise TuningError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        self.device = device
        self.mode = mode
        self.plan_cache = plan_cache if plan_cache is not None else KernelPlanCache()
        self.keep_history = keep_history
        self.exhaustive_kwargs = exhaustive_kwargs or {}
        #: Extra arguments for :func:`pruned_space` (e.g. a smaller
        #: ``keep_block_dims`` for time-boxed benchmark runs).
        self.pruned_kwargs = pruned_kwargs or {}
        self.workers = workers
        self.executor = executor

    def tune(self, matrix, x: np.ndarray | None = None) -> TuningResult:
        """Search; returns the ranked result.

        ``x`` defaults to an all-ones vector -- only the cost profile
        depends on it (via gather locality), not the ranking mechanics.
        """
        csr = as_csr(matrix)
        if x is None:
            x = np.ones(csr.shape[1], dtype=np.float64)

        if self.mode == "pruned":
            space = pruned_space(csr, self.device, **self.pruned_kwargs)
        else:
            space = exhaustive_space(csr, self.device, **self.exhaustive_kwargs)

        items = list(enumerate(space))
        t0 = time.perf_counter()
        hits0 = self.plan_cache.hits
        misses0 = self.plan_cache.misses

        if self.workers == 1:
            # Serial walk straight through the shared plan cache -- no
            # replay needed, the lookups *are* the canonical order.
            outcomes = evaluate_candidates(
                items, csr, x, self.device, FormatCache(csr), self.plan_cache
            )
        else:
            outcomes = run_parallel(
                items,
                csr,
                x,
                self.device,
                workers=self.workers,
                executor=self.executor,
                compile_cost=self.plan_cache.compile_cost_s,
            )
            # Workers compiled against throwaway caches; replay the plan
            # lookups here, in enumeration order, so the shared cache
            # ends up in the exact state a serial run leaves behind.
            for outcome in outcomes:
                if not outcome.format_skipped:
                    self.plan_cache.get(outcome.point)

        return self._merge(outcomes, t0, hits0, misses0)

    def _merge(
        self,
        outcomes: list[CandidateOutcome],
        t0: float,
        hits0: int,
        misses0: int,
    ) -> TuningResult:
        """Fold index-ordered outcomes into a :class:`TuningResult`.

        Shared by the serial and parallel paths: walking the outcomes in
        enumeration order reproduces the serial loop's tie-breaking (the
        first strictly faster candidate wins) and its skip-reason
        insertion order.
        """
        best: Evaluation | None = None
        history: list[Evaluation] = []
        evaluated = 0
        skipped = 0
        skip_reasons: dict[str, int] = {}

        for outcome in outcomes:
            if outcome.evaluation is None:
                skipped += 1
                reason = outcome.skip_reason or "ReproError"
                skip_reasons[reason] = skip_reasons.get(reason, 0) + 1
                continue
            ev: Evaluation = outcome.evaluation
            evaluated += 1
            if self.keep_history:
                history.append(ev)
            if best is None or ev.time_s < best.time_s:
                best = ev

        if best is None:
            raise TuningError("no tuning candidate was evaluable for this matrix")

        return TuningResult(
            best=best,
            evaluated=evaluated,
            skipped=skipped,
            wall_seconds=time.perf_counter() - t0,
            simulated_compile_s=self.plan_cache.simulated_compile_time_s,
            plan_cache_hits=self.plan_cache.hits,
            plan_cache_misses=self.plan_cache.misses,
            cache_hits=self.plan_cache.hits - hits0,
            cache_misses=self.plan_cache.misses - misses0,
            workers=self.workers,
            history=history,
            skip_reasons=skip_reasons,
        )
