"""Small shared utilities used across the :mod:`repro` package.

Everything in here is deliberately dependency-free (NumPy only) and
vectorized; these helpers sit on hot paths of the format converters and the
simulated kernels.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
from scipy import sparse as _sp

__all__ = [
    "ceil_div",
    "round_up",
    "as_csr",
    "as_coo_sorted",
    "segment_lengths_from_stops",
    "run_lengths",
    "first_true_per_segment",
    "pad_to_multiple",
    "check_1d",
    "dtype_nbytes",
]


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division ``ceil(a / b)`` for non-negative ``a``, ``b > 0``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div requires a >= 0, got {a}")
    return -(-a // b)


def round_up(a: int, multiple: int) -> int:
    """Round ``a`` up to the nearest multiple of ``multiple``."""
    return ceil_div(a, multiple) * multiple


def as_csr(matrix) -> _sp.csr_matrix:
    """Coerce any scipy-sparse / dense input to canonical CSR.

    The result has sorted indices, no duplicates, and no explicit zeros --
    the baseline every format converter in :mod:`repro.formats` assumes.
    """
    if _sp.issparse(matrix):
        csr = matrix.tocsr()
    else:
        csr = _sp.csr_matrix(np.asarray(matrix))
    csr = csr.copy()
    csr.sum_duplicates()
    csr.eliminate_zeros()
    csr.sort_indices()
    return csr


def as_coo_sorted(matrix) -> _sp.coo_matrix:
    """Coerce input to COO with entries sorted in row-major order."""
    coo = as_csr(matrix).tocoo()
    # CSR -> COO already yields row-major ordering with sorted columns.
    return coo


def segment_lengths_from_stops(stops: np.ndarray) -> np.ndarray:
    """Lengths of segments delimited by ``True`` stop markers.

    ``stops[i]`` is True when element ``i`` is the *last* element of its
    segment.  A trailing open segment (no final stop) is *not* reported --
    matching the paper's semantics where padding extends the final segment
    but never closes it.

    >>> segment_lengths_from_stops(np.array([0, 0, 1, 1, 0, 1], dtype=bool))
    array([3, 1, 2])
    """
    stops = np.asarray(stops, dtype=bool)
    idx = np.flatnonzero(stops)
    if idx.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.diff(np.concatenate(([-1], idx)))


def run_lengths(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length encode ``values`` -> ``(run_values, run_lengths)``.

    >>> run_lengths(np.array([3, 3, 5, 5, 5, 2]))
    (array([3, 5, 2]), array([2, 3, 1]))
    """
    values = np.asarray(values)
    if values.size == 0:
        return values[:0], np.empty(0, dtype=np.int64)
    change = np.empty(values.size, dtype=bool)
    change[0] = True
    np.not_equal(values[1:], values[:-1], out=change[1:])
    starts = np.flatnonzero(change)
    lengths = np.diff(np.concatenate((starts, [values.size])))
    return values[starts], lengths


def first_true_per_segment(flags: np.ndarray, segment_size: int) -> np.ndarray:
    """Index of the first True within each fixed-size segment, or -1.

    ``flags`` is reshaped to ``(-1, segment_size)``; for every row the index
    of its first True element is returned (or -1 when the row has none).
    Used to find the first row stop of each thread-level tile.
    """
    flags = np.asarray(flags, dtype=bool)
    if flags.size % segment_size != 0:
        raise ValueError(
            f"flags length {flags.size} is not a multiple of segment size {segment_size}"
        )
    grid = flags.reshape(-1, segment_size)
    has_any = grid.any(axis=1)
    first = grid.argmax(axis=1)
    return np.where(has_any, first, -1)


def pad_to_multiple(arr: np.ndarray, multiple: int, fill) -> np.ndarray:
    """Pad a 1-D array with ``fill`` so its length is a multiple of ``multiple``."""
    arr = np.asarray(arr)
    target = round_up(arr.shape[0], multiple) if arr.shape[0] else multiple * 0
    if target == arr.shape[0]:
        return arr
    out = np.full(target, fill, dtype=arr.dtype)
    out[: arr.shape[0]] = arr
    return out


def check_1d(name: str, arr: np.ndarray) -> np.ndarray:
    """Validate that ``arr`` is one-dimensional; return it as ndarray."""
    arr = np.asarray(arr)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def dtype_nbytes(dtype) -> int:
    """Size in bytes of one element of ``dtype``."""
    return int(np.dtype(dtype).itemsize)


def iter_chunks(n: int, chunk: int) -> Iterable[tuple[int, int]]:
    """Yield ``(start, stop)`` pairs covering ``range(n)`` in ``chunk`` steps."""
    for start in range(0, n, chunk):
        yield start, min(start + chunk, n)
