"""Differential tests: ``fast`` must be *bit-identical* to ``faithful``.

The fast backend's contract is exact equality (``np.array_equal``), not
numerical closeness -- it must produce the same addition sequence as the
workgroup interpreter, so the sweep below covers formats x configs x
matrix shapes x fault sites and compares with zero tolerance.  The cost
model is part of the contract too: :class:`~repro.gpu.counters.
KernelStats` is compared field by field.

The ``auto`` backend's fallback discipline is tested by sabotaging the
fast path and watching the ``backend.auto_fallbacks`` counter.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from scipy import sparse

from repro import Observer, SpMVEngine, obs_scope
from repro.backends import available_backends, get_backend
from repro.backends.auto import AutoBackend
from repro.errors import ReproError, TuningError
from repro.fault import FaultPlan
from repro.fault.injection import fault_scope
from repro.gpu import get_device
from repro.kernels.base import KernelResult
from repro.tuning import TuningPoint

DEVICE = get_device("gtx680")

#: Config spread: the fused 1x1 path, tall/wide/square blocks, BCCOO+
#: slicing, raw (uncompressed) column indices, non-default bit words.
CONFIGS = [
    TuningPoint(),
    TuningPoint(block_height=2, block_width=2),
    TuningPoint(block_height=1, block_width=4),
    TuningPoint(block_height=4, block_width=1),
    TuningPoint(block_height=2, block_width=1, col_compress=False),
    TuningPoint(bit_word="uint8"),
    TuningPoint(slice_count=4),
    TuningPoint(block_height=2, block_width=2, slice_count=2),
]

#: Fault sites that perturb kernel execution.  Under an active plan the
#: fast backend delegates wholesale to the interpreter, so injected
#: faults corrupt both backends identically -- that delegation is the
#: property under test.
KERNEL_FAULT_SITES = [
    "sync.stale_grp_sum",
    "dispatch.out_of_order",
    "format.bitflag_flip",
    "format.column_truncate",
    "kernel.nan_partial",
    "kernel.inf_partial",
]


def _matrices(rng):
    """Structurally diverse corpus: banded, hub row, empty rows, tiny."""
    out = {}
    out["random"] = sparse.random(120, 140, density=0.06, random_state=1,
                                  format="csr")
    out["square_dense"] = sparse.csr_matrix(
        rng.standard_normal((40, 40)) * (rng.random((40, 40)) < 0.4)
    )
    hub = sparse.random(90, 90, density=0.02, random_state=2, format="lil")
    hub[7, :70] = rng.standard_normal(70)
    out["hub_row"] = hub.tocsr()
    empty = sparse.random(60, 50, density=0.05, random_state=3, format="csr")
    empty = empty.tolil()
    empty[10, :] = 0
    empty[11, :] = 0
    out["empty_rows"] = empty.tocsr()
    out["single_col"] = sparse.csr_matrix(rng.standard_normal((30, 1)))
    return out


def _assert_stats_equal(a, b):
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            assert np.array_equal(np.asarray(va), np.asarray(vb)), f.name
        else:
            assert va == vb, f"{f.name}: {va!r} != {vb!r}"


class TestBitIdentity:
    @pytest.fixture(scope="class")
    def corpus(self):
        return _matrices(np.random.default_rng(99))

    @pytest.mark.parametrize("point", CONFIGS, ids=lambda p: (
        f"{p.block_height}x{p.block_width}-{p.bit_word}"
        f"{'-nocc' if not p.col_compress else ''}"
        f"{'-s' + str(p.slice_count) if p.slice_count > 1 else ''}"
    ))
    def test_spmv_exact(self, corpus, point):
        engine = SpMVEngine(device=DEVICE)
        faithful, fast = get_backend("faithful"), get_backend("fast")
        rng = np.random.default_rng(5)
        for name, A in corpus.items():
            prepared = engine.prepare(A, point=point)
            fmt, cfg = prepared.fmt, prepared.config
            x = rng.standard_normal(A.shape[1])
            rf = faithful.execute(fmt, x, DEVICE, cfg)
            rv = fast.execute(fmt, x, DEVICE, cfg)
            assert np.array_equal(rf.y, rv.y), name
            _assert_stats_equal(rf.stats, rv.stats)

    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_spmm_exact(self, corpus, k):
        engine = SpMVEngine(device=DEVICE)
        faithful, fast = get_backend("faithful"), get_backend("fast")
        rng = np.random.default_rng(6)
        for name, A in corpus.items():
            prepared = engine.prepare(A, point=TuningPoint())
            fmt, cfg = prepared.fmt, prepared.config
            X = rng.standard_normal((A.shape[1], k))
            rf = faithful.execute_multi(fmt, X, DEVICE, cfg)
            rv = fast.execute_multi(fmt, X, DEVICE, cfg)
            assert np.array_equal(rf.y, rv.y), name
            _assert_stats_equal(rf.stats, rv.stats)

    def test_extreme_values_exact(self):
        # Denormals, huge magnitudes, negative zero: any reassociation
        # in the fast path would change these sums.
        rng = np.random.default_rng(11)
        A = sparse.random(80, 80, density=0.1, random_state=4, format="csr")
        A.data = np.concatenate([
            rng.standard_normal(A.nnz // 3) * 1e120,
            rng.standard_normal(A.nnz // 3) * 1e-120,
            rng.standard_normal(A.nnz - 2 * (A.nnz // 3)),
        ])[np.argsort(rng.random(A.nnz))]
        engine = SpMVEngine(device=DEVICE)
        prepared = engine.prepare(A, point=TuningPoint())
        x = rng.standard_normal(80) * np.exp(rng.uniform(-80, 80, 80))
        rf = get_backend("faithful").execute(prepared.fmt, x, DEVICE, prepared.config)
        rv = get_backend("fast").execute(prepared.fmt, x, DEVICE, prepared.config)
        assert np.array_equal(rf.y, rv.y)


class TestFaultDelegation:
    """Under an active fault plan, fast == faithful fault for fault."""

    @pytest.mark.parametrize("site", KERNEL_FAULT_SITES)
    def test_injected_fault_identical(self, site, random_matrix, rng):
        A = random_matrix(nrows=100, ncols=100, density=0.06, seed=13)
        engine = SpMVEngine(device=DEVICE)
        prepared = engine.prepare(A, point=TuningPoint())
        fmt, cfg = prepared.fmt, prepared.config
        x = rng.standard_normal(100)

        def run(backend_name):
            # Fresh plan per run: counts are consumed, seeds replay.
            plan = FaultPlan.single(site, seed=21, count=1)
            backend = get_backend(backend_name)
            with fault_scope(plan):
                try:
                    return backend.execute(fmt, x, DEVICE, cfg).y
                except ReproError as exc:
                    return type(exc).__name__

        ref, fast = run("faithful"), run("fast")
        if isinstance(ref, str):
            assert fast == ref
        else:
            # NaN-injecting sites need equal_nan; array_equal treats
            # -0.0 == 0.0 either way, which matches the contract.
            assert np.array_equal(ref, fast, equal_nan=True), site


class TestAutoBackend:
    def test_clean_run_uses_fast(self, random_matrix, rng):
        A = random_matrix(nrows=90, ncols=90, seed=17)
        engine = SpMVEngine(device=DEVICE, backend="auto")
        prepared = engine.prepare(A, point=TuningPoint())
        x = rng.standard_normal(90)
        obs = Observer()
        with obs_scope(obs):
            res = engine.multiply(prepared, x)
        np.testing.assert_allclose(res.y, A @ x, atol=1e-9)
        # A clean run never touches the fallback counter.
        assert obs.metrics.get("backend.auto_fallbacks") is None

    def test_fallback_on_fast_error(self, random_matrix, rng, monkeypatch):
        A = random_matrix(nrows=90, ncols=90, seed=18)
        engine = SpMVEngine(device=DEVICE)
        prepared = engine.prepare(A, point=TuningPoint())
        x = rng.standard_normal(90)
        auto = AutoBackend()
        golden = get_backend("faithful").execute(
            prepared.fmt, x, DEVICE, prepared.config
        ).y

        def boom(*args, **kwargs):
            raise TuningError("sabotaged fast path")

        monkeypatch.setattr(auto._fast, "execute", boom)
        obs = Observer()
        with obs_scope(obs):
            res = auto.execute(prepared.fmt, x, DEVICE, prepared.config)
        assert np.array_equal(res.y, golden)
        counter = obs.metrics.get("backend.auto_fallbacks")
        assert counter is not None
        assert counter.value(reason="TuningError") == 1

    def test_fallback_on_validator_mismatch(self, random_matrix, rng, monkeypatch):
        A = random_matrix(nrows=90, ncols=90, seed=19)
        engine = SpMVEngine(device=DEVICE)
        prepared = engine.prepare(A, point=TuningPoint())
        x = rng.standard_normal(90)
        auto = AutoBackend()
        faithful = get_backend("faithful")
        golden = faithful.execute(prepared.fmt, x, DEVICE, prepared.config)

        def corrupt(*args, **kwargs):
            bad = golden.y.copy()
            bad[0] += 1.0
            return KernelResult(y=bad, stats=golden.stats)

        monkeypatch.setattr(auto._fast, "execute", corrupt)
        obs = Observer()
        with obs_scope(obs):
            res = auto.execute(
                prepared.fmt, x, DEVICE, prepared.config,
                reference=prepared.reference_csr(),
            )
        assert np.array_equal(res.y, golden.y)
        assert obs.metrics.get("backend.auto_fallbacks").value(
            reason="validator_mismatch"
        ) == 1


class TestRegistry:
    def test_three_builtins(self):
        names = set(available_backends())
        assert {"faithful", "fast", "auto"} <= names

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            get_backend("warp_speed")

    def test_engine_per_call_override(self, random_matrix, rng):
        A = random_matrix(nrows=70, ncols=70, seed=23)
        engine = SpMVEngine(device=DEVICE, backend="faithful")
        prepared = engine.prepare(A, point=TuningPoint())
        x = rng.standard_normal(70)
        base = engine.multiply(prepared, x)
        fast = engine.multiply(prepared, x, backend="fast")
        assert np.array_equal(base.y, fast.y)
        assert engine.backend.name == "faithful"
