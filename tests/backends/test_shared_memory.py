"""Shared-memory prepared matrices: one copy, many mappers.

Covers the :class:`~repro.core.shm.SharedArena` refcounted-unlink
contract, the ``prepare(share=True)`` pickle path (a descriptor ships,
not the arrays -- a child process maps the same pages and multiplies
bit-identically), the tuner's ``share_operand`` plumbing (workers attach
the parent's segment instead of unpickling copies), and the serve
cache's shared/owned footprint split.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro import Observer, SpMVEngine
from repro.core.shm import SharedArena, reset_shm_stats, shm_stats
from repro.errors import ReproError
from repro.gpu import get_device
from repro.serve.cache import prepared_footprint_bytes, prepared_footprint_split
from repro.tuning import AutoTuner, TuningPoint

DEVICE = get_device("gtx680")


def _child_multiply(payload, x, queue):
    """Run in a forked child: unpickle the descriptor, map, multiply."""
    prepared = pickle.loads(payload)
    try:
        engine = SpMVEngine(device="gtx680")
        res = engine.multiply(prepared, x)
        queue.put(("ok", res.y, prepared.shared, shm_stats()["attaches"]))
    except Exception as exc:  # pragma: no cover - failure reporting
        queue.put(("err", repr(exc), False, 0))
    finally:
        prepared.release_shared()


class TestSharedArena:
    @given(
        n=st.integers(min_value=1, max_value=300),
        dtype=st.sampled_from(["f8", "f4", "i4", "u1"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_exact(self, n, dtype, seed):
        rng = np.random.default_rng(seed)
        arrays = {
            "a": (rng.random(n) * 100).astype(dtype),
            "b": rng.integers(0, 255, size=(3, n)).astype(dtype),
        }
        arena = SharedArena.create(arrays)
        try:
            mapped = SharedArena.attach(arena.descriptor())
            for key, src in arrays.items():
                assert np.array_equal(mapped.view(key), src)
            mapped.close()
            # Same-process attach dedups: still the owner's arena.
            assert mapped is arena
        finally:
            arena.close()

    def test_owner_unlinks_mapper_does_not(self):
        reset_shm_stats()
        arena = SharedArena.create({"v": np.arange(8.0)})
        mapped = SharedArena.attach(arena.descriptor())
        mapped.close()  # refcount drop, no unlink
        assert shm_stats()["unlinks"] == 0
        arena.close()
        assert shm_stats()["unlinks"] == 1

    def test_missing_key_is_typed_error(self):
        arena = SharedArena.create({"v": np.arange(4.0)})
        try:
            with pytest.raises(ReproError):
                arena.view("nope")
        finally:
            arena.close()


class TestSharedPreparedMatrix:
    def _prepared(self, nrows=80, ncols=90, seed=5):
        A = sparse.random(nrows, ncols, density=0.07, random_state=seed,
                          format="csr")
        engine = SpMVEngine(device=DEVICE)
        return A, engine, engine.prepare(A, point=TuningPoint(), share=True)

    def test_share_is_idempotent_and_views_alias(self):
        _, _, prepared = self._prepared()
        try:
            assert prepared.shared
            arena = prepared.arena
            assert prepared.share() is prepared
            assert prepared.arena is arena
            inner = prepared.fmt
            assert arena.owns(inner.values)
            assert arena.owns(prepared.reference_csr().data)
        finally:
            prepared.release_shared()

    def test_pickle_ships_descriptor_not_arrays(self):
        A, engine, prepared = self._prepared(nrows=300, ncols=300)
        try:
            blob = pickle.dumps(prepared)
            # The packed buffers alone dwarf the pickled descriptor.
            assert len(blob) < prepared.arena.nbytes / 4
        finally:
            prepared.release_shared()

    @given(
        nrows=st.integers(min_value=3, max_value=90),
        ncols=st.integers(min_value=3, max_value=90),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=8, deadline=None)
    def test_child_process_multiplies_bit_identically(self, nrows, ncols, seed):
        A = sparse.random(nrows, ncols, density=0.15, random_state=seed,
                          format="csr")
        if A.nnz == 0:
            A = sparse.csr_matrix(([1.0], ([0], [0])), shape=(nrows, ncols))
        engine = SpMVEngine(device=DEVICE)
        prepared = engine.prepare(A, point=TuningPoint(), share=True)
        x = np.random.default_rng(seed).standard_normal(ncols)
        try:
            golden = engine.multiply(prepared, x).y
            ctx = mp.get_context("fork")
            queue = ctx.Queue()
            proc = ctx.Process(
                target=_child_multiply, args=(pickle.dumps(prepared), x, queue)
            )
            proc.start()
            status, y, was_shared, attaches = queue.get(timeout=60)
            proc.join(timeout=60)
            assert status == "ok", y
            assert was_shared, "child should map the segment, not copy it"
            assert attaches >= 1
            assert np.array_equal(y, golden)
        finally:
            prepared.release_shared()
        # The owner's release unlinked the name: a fresh attach must fail.
        with pytest.raises((FileNotFoundError, ReproError)):
            SharedArena.attach({"name": "/nonexistent-repro-arena",
                                "layout": {}})


class TestFootprintSplit:
    def test_shared_bytes_not_charged_to_owner(self):
        A = sparse.random(120, 120, density=0.08, random_state=9, format="csr")
        engine = SpMVEngine(device=DEVICE)
        plain = engine.prepare(A, point=TuningPoint())
        shared = engine.prepare(A, point=TuningPoint(), share=True)
        try:
            split_plain = prepared_footprint_split(plain)
            split_shared = prepared_footprint_split(shared)
            assert split_plain["shared"] == 0
            assert split_plain["owned"] == split_plain["total"]
            assert split_shared["shared"] == shared.arena.nbytes
            assert split_shared["owned"] < split_shared["total"]
            # The LRU charge is the owned remainder only.
            assert prepared_footprint_bytes(shared) == split_shared["owned"]
            assert (
                prepared_footprint_bytes(shared)
                < prepared_footprint_bytes(plain)
            )
        finally:
            shared.release_shared()


class TestTunerSharedOperand:
    def test_workers_attach_one_segment(self, random_matrix):
        A = random_matrix(nrows=120, ncols=120, density=0.06, seed=31)
        obs = Observer()
        reset_shm_stats()
        parallel = AutoTuner(
            DEVICE, workers=2, backend="fast", share_operand=True,
            observer=obs,
        ).tune(A)
        serial = AutoTuner(DEVICE, backend="fast").tune(A)

        assert parallel.best.point == serial.best.point
        assert parallel.best.time_s == serial.best.time_s
        assert parallel.evaluated == serial.evaluated
        assert parallel.skip_reasons == serial.skip_reasons

        counter = obs.metrics.get("tuner.shm.attaches")
        assert counter is not None
        assert counter.value() >= 2, "both workers should map the segment"
        stats = shm_stats()
        assert stats["segments_created"] == 1
        assert stats["unlinks"] == 1, "owner must unlink after the sweep"

    def test_share_without_workers_is_plain_serial(self, random_matrix):
        A = random_matrix(nrows=60, ncols=60, seed=37)
        res = AutoTuner(DEVICE, share_operand=True).tune(A)
        assert res.best is not None
