"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse


@pytest.fixture
def rng():
    return np.random.default_rng(20140215)  # PPoPP'14 conference date


@pytest.fixture
def paper_matrix_a():
    """Matrix A of Eq. 1 -- the paper's running example.

    ::

        0 0 a 0 0 0 b c
        0 0 d e 0 0 f 0
        0 0 0 0 g h i j
        k l 0 0 m n o p

    with a..p = 1..16 so tests can assert exact values.
    """
    dense = np.array(
        [
            [0, 0, 1, 0, 0, 0, 2, 3],
            [0, 0, 4, 5, 0, 0, 6, 0],
            [0, 0, 0, 0, 7, 8, 9, 10],
            [11, 12, 0, 0, 13, 14, 15, 16],
        ],
        dtype=np.float64,
    )
    return sparse.csr_matrix(dense)


@pytest.fixture
def random_matrix(rng):
    """Factory for random CSR matrices."""

    def make(nrows=60, ncols=80, density=0.08, seed=None):
        rs = int(rng.integers(1 << 31)) if seed is None else seed
        return sparse.random(
            nrows, ncols, density=density, random_state=rs, format="csr"
        )

    return make


@pytest.fixture
def skewed_matrix(rng):
    """Matrix with one hub row -- the row-based kernels' worst case."""
    A = sparse.random(400, 400, density=0.01, random_state=3, format="lil")
    A[5, :300] = rng.standard_normal(300)
    out = A.tocsr()
    out.eliminate_zeros()
    return out


@pytest.fixture
def stencil_matrix():
    """Tridiagonal stencil -- the regular-format-friendly case."""
    n = 300
    return sparse.diags(
        [np.ones(n - 1), 2.0 * np.ones(n), np.ones(n - 1)], [-1, 0, 1]
    ).tocsr()


@pytest.fixture
def empty_row_matrix():
    """Matrix with many empty rows (exercises the non-empty-row map)."""
    rows = np.array([0, 0, 7, 31, 31, 31])
    cols = np.array([3, 9, 0, 2, 9, 15])
    data = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    return sparse.csr_matrix((data, (rows, cols)), shape=(40, 20))
