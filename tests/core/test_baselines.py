"""Tests for the comparator runners (CUSPARSE / CUSP / clSpMV stand-ins)."""

import numpy as np
import pytest

from repro.core import (
    run_clspmv_best_single,
    run_clspmv_cocktail,
    run_cusp,
    run_cusparse_best,
)
from repro.gpu import GTX680

RUNNERS = [run_cusparse_best, run_cusp, run_clspmv_best_single, run_clspmv_cocktail]


@pytest.mark.parametrize("runner", RUNNERS)
class TestCorrectness:
    def test_exact_product(self, runner, random_matrix, rng):
        A = random_matrix(nrows=120, ncols=120, density=0.06)
        x = rng.standard_normal(120)
        res = runner(A, x, GTX680)
        np.testing.assert_allclose(res.y, A @ x, atol=1e-9)
        assert res.time_s > 0 and res.gflops > 0
        assert res.system

    def test_skewed_matrix(self, runner, skewed_matrix, rng):
        x = rng.standard_normal(skewed_matrix.shape[1])
        res = runner(skewed_matrix, x, GTX680)
        np.testing.assert_allclose(res.y, skewed_matrix @ x, atol=1e-8)


class TestSelection:
    def test_cusparse_picks_among_its_formats(self, random_matrix, rng):
        A = random_matrix()
        res = run_cusparse_best(A, rng.standard_normal(A.shape[1]), GTX680)
        assert res.variant.split("-")[0] in ("csr", "hyb", "bcsr")

    def test_cusp_is_coo(self, random_matrix, rng):
        A = random_matrix()
        res = run_cusp(A, rng.standard_normal(A.shape[1]), GTX680)
        assert res.variant == "coo"

    def test_single_prefers_dia_on_stencil(self, stencil_matrix, rng):
        x = rng.standard_normal(stencil_matrix.shape[1])
        res = run_clspmv_best_single(stencil_matrix, x, GTX680)
        assert res.variant in ("dia", "ell")  # regular formats win

    def test_cocktail_never_worse_than_single(self, skewed_matrix, stencil_matrix, rng):
        for A in (skewed_matrix, stencil_matrix):
            x = rng.standard_normal(A.shape[1])
            single = run_clspmv_best_single(A, x, GTX680)
            cocktail = run_clspmv_cocktail(A, x, GTX680)
            assert cocktail.time_s <= single.time_s * 1.0001
