"""Tests for the benchmark regression gate (:mod:`repro.bench.compare`).

Synthetic snapshot dicts only -- the sweeps themselves are covered by
``test_bench_harness``; here we pin the diffing semantics: direction
awareness (a *faster* kernel is never a regression, a *slower* one is),
the threshold boundary, added/removed metrics as context rather than
failure, and the typed errors for junk inputs.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    CompareReport,
    MetricDelta,
    compare_snapshots,
    load_snapshot,
)
from repro.errors import ValidationError


def kernels_snap(fast_s, faithful_s=2.0, matrix="QCD"):
    return {
        "kind": "bench_kernels",
        "matrices": [
            {"matrix": matrix, "fast_s": fast_s, "faithful_s": faithful_s},
        ],
    }


def serving_snap(throughput_rps, p99_ms=10.0, shards=2):
    return {
        "kind": "bench_serving",
        "shard_sweep": [
            {"shards": shards, "throughput_rps": throughput_rps,
             "p99_ms": p99_ms, "p50_ms": p99_ms / 2},
        ],
    }


def solvers_snap(direct_rate, swap_s=0.01):
    return {
        "kind": "bench_solvers",
        "solves": [
            {"method": "cg", "direct": {"iterations_per_s": direct_rate},
             "served": {"iterations_per_s": direct_rate * 0.9}},
        ],
        "value_refresh": {"swap_s": swap_s},
    }


class TestDirections:
    def test_slower_time_metric_regresses(self):
        report = compare_snapshots(kernels_snap(1.0), kernels_snap(1.3))
        assert not report.passed
        assert [d.metric for d in report.regressions] == [
            "kernels/QCD/fast_s"
        ]

    def test_faster_time_metric_is_an_improvement(self):
        report = compare_snapshots(kernels_snap(1.0), kernels_snap(0.5))
        assert report.passed
        delta = next(
            d for d in report.deltas if d.metric == "kernels/QCD/fast_s"
        )
        assert delta.change < 0  # improved, not merely tolerated

    def test_lower_throughput_regresses(self):
        report = compare_snapshots(serving_snap(100.0), serving_snap(70.0))
        assert not report.passed
        assert "serving/shards=2/throughput_rps" in [
            d.metric for d in report.regressions
        ]

    def test_higher_throughput_improves(self):
        report = compare_snapshots(serving_snap(100.0), serving_snap(160.0))
        assert report.passed

    def test_solver_rate_and_swap_time_both_tracked(self):
        report = compare_snapshots(
            solvers_snap(50.0, swap_s=0.01),
            solvers_snap(30.0, swap_s=0.05),
        )
        regressed = {d.metric for d in report.regressions}
        assert "solvers/cg/direct/iterations_per_s" in regressed
        assert "solvers/value_refresh/swap_s" in regressed


class TestThreshold:
    def test_move_at_threshold_is_tolerated(self):
        # change == threshold must NOT regress (strict inequality).
        report = compare_snapshots(
            kernels_snap(1.0), kernels_snap(1.15), threshold=0.15
        )
        assert report.passed

    def test_move_just_past_threshold_fails(self):
        report = compare_snapshots(
            kernels_snap(1.0), kernels_snap(1.16), threshold=0.15
        )
        assert not report.passed

    def test_tighter_threshold_catches_smaller_moves(self):
        report = compare_snapshots(
            kernels_snap(1.0), kernels_snap(1.10), threshold=0.05
        )
        assert not report.passed

    def test_zero_baseline_never_divides(self):
        delta = MetricDelta(
            metric="kernels/x/fast_s", direction="lower",
            baseline=0.0, current=5.0,
        )
        assert delta.change == 0.0

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ValidationError):
            compare_snapshots(
                kernels_snap(1.0), kernels_snap(1.0), threshold=0.0
            )


class TestShapeChanges:
    def test_added_and_removed_metrics_are_context_not_failures(self):
        base = kernels_snap(1.0, matrix="QCD")
        cur = kernels_snap(1.0, matrix="Circuit")
        report = compare_snapshots(base, cur)
        assert report.passed
        assert report.deltas == []
        assert "kernels/Circuit/fast_s" in report.added
        assert "kernels/QCD/fast_s" in report.removed

    def test_kind_mismatch_is_a_caller_error(self):
        with pytest.raises(ValidationError):
            compare_snapshots(kernels_snap(1.0), serving_snap(100.0))

    def test_unknown_kind_yields_no_metrics(self):
        report = compare_snapshots(
            {"kind": "bench_future"}, {"kind": "bench_future"}
        )
        assert report.passed and report.deltas == []


class TestReport:
    def test_report_is_json_able(self):
        report = compare_snapshots(kernels_snap(1.0), kernels_snap(1.3))
        blob = json.loads(json.dumps(report.to_dict()))
        assert blob["kind"] == "bench_compare"
        assert blob["passed"] is False
        assert blob["regressions"] == ["kernels/QCD/fast_s"]
        assert "REGRESSED" in report.summary()
        assert "FAIL" in report.summary()

    def test_passing_summary_says_pass(self):
        report = compare_snapshots(kernels_snap(1.0), kernels_snap(1.0))
        assert "PASS" in report.summary()

    def test_empty_report_passes(self):
        assert CompareReport(threshold=0.15).passed


class TestLoadSnapshot:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="no benchmark snapshot"):
            load_snapshot(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_snapshot(path)

    def test_json_without_kind(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValidationError, match="kind"):
            load_snapshot(path)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps(kernels_snap(1.0)))
        snap = load_snapshot(path)
        assert snap["kind"] == "bench_kernels"
        report = compare_snapshots(snap, kernels_snap(1.05))
        assert report.passed


def multi_kernels_snap(times: dict[str, float]):
    return {
        "kind": "bench_kernels",
        "matrices": [
            {"matrix": name, "fast_s": t} for name, t in times.items()
        ],
    }


def formats_snap(stencil_merge_us=6.75, dense_rg_us=122.6):
    return {
        "kind": "bench_formats",
        "classes": [
            {"class": "stencil_band", "entrants": {
                "merge_csr": {"time_us": stencil_merge_us},
                "bccoo": {"time_us": 6.93},
            }},
            {"class": "dense_rows_uniform", "entrants": {
                "rgcsr": {"time_us": dense_rg_us},
            }},
        ],
    }


class TestCalibration:
    """--calibrate: the cohort's median drift belongs to the runner."""

    def test_uniform_drift_passes_calibrated(self):
        base = multi_kernels_snap({"A": 1.0, "B": 2.0, "C": 3.0})
        cur = multi_kernels_snap({"A": 1.4, "B": 2.8, "C": 4.2})
        assert not compare_snapshots(base, cur, threshold=0.15).passed
        report = compare_snapshots(
            base, cur, threshold=0.15, calibrate=True
        )
        assert report.passed
        assert report.calibration["lower"] == pytest.approx(0.4)
        for d in report.deltas:
            assert d.adjusted_change == pytest.approx(0.0, abs=1e-9)

    def test_relative_regression_still_caught(self):
        base = multi_kernels_snap({"A": 1.0, "B": 2.0, "C": 3.0})
        cur = multi_kernels_snap({"A": 1.4, "B": 2.8, "C": 3.0 * 1.4 * 2.5})
        report = compare_snapshots(
            base, cur, threshold=0.15, calibrate=True
        )
        assert not report.passed
        assert [d.metric for d in report.regressions] == [
            "kernels/C/fast_s"
        ]

    def test_uncalibrated_shift_is_zero(self):
        report = compare_snapshots(
            kernels_snap(1.0), kernels_snap(1.1)
        )
        assert report.calibration is None
        assert all(d.shift == 0.0 for d in report.deltas)
        assert all(d.adjusted_change == d.change for d in report.deltas)

    def test_shift_recorded_in_dicts_and_summary(self):
        base = multi_kernels_snap({"A": 1.0, "B": 2.0})
        cur = multi_kernels_snap({"A": 1.5, "B": 3.0})
        report = compare_snapshots(
            base, cur, threshold=0.15, calibrate=True
        )
        blob = report.to_dict()
        assert blob["calibration"]["lower"] == pytest.approx(0.5)
        assert all("shift" in d for d in blob["deltas"])
        assert "runner calibration" in report.summary()


class TestFormatsSnapshots:
    def test_formats_metrics_flattened_per_entrant(self):
        report = compare_snapshots(formats_snap(), formats_snap())
        metrics = {d.metric for d in report.deltas}
        assert "formats/stencil_band/merge_csr/time_us" in metrics
        assert "formats/dense_rows_uniform/rgcsr/time_us" in metrics
        assert report.passed

    def test_slower_entrant_regresses(self):
        report = compare_snapshots(
            formats_snap(), formats_snap(stencil_merge_us=6.75 * 2)
        )
        assert [d.metric for d in report.regressions] == [
            "formats/stencil_band/merge_csr/time_us"
        ]
