"""Tests for the benchmark harness and report rendering."""

import numpy as np
import pytest

from repro.bench import (
    SYSTEMS,
    compare_systems,
    harmonic_mean,
    render_comparison,
    render_speedups,
    render_table,
    run_suite_comparison,
)


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_dominated_by_small_values(self):
        assert harmonic_mean([1.0, 100.0]) < 2.0

    def test_ignores_nonpositive(self):
        assert harmonic_mean([2.0, 0.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert harmonic_mean([]) == 0.0


class TestCompareSystems:
    def test_all_systems_present(self, random_matrix, rng):
        A = random_matrix(nrows=100, ncols=100, density=0.06)
        scores = compare_systems(A, "gtx680", x=rng.standard_normal(100))
        assert set(scores) == set(SYSTEMS)
        for s in scores.values():
            assert s.gflops > 0
            assert s.time_s > 0

    def test_yaspmv_variant_describes_config(self, random_matrix):
        A = random_matrix()
        scores = compare_systems(A, "gtx680")
        variant = scores["yaspmv"].variant
        fmt = variant.split("-")[0]
        # Any cocktail member can win the widened search; the variant
        # leads with the winning format and carries its own knobs.
        assert fmt in {"bccoo", "bccoo+", "merge_csr", "rgcsr"}
        if fmt.startswith("bccoo"):
            assert "-s" in variant  # blocking + strategy axes
        else:
            assert "-wg" in variant  # launch geometry only


class TestSuiteComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_suite_comparison(
            "gtx680", cap_nnz=20_000, names=["QCD", "Circuit"], fast_tuning=True
        )

    def test_rows_and_metadata(self, rows):
        assert [r.name for r in rows] == ["QCD", "Circuit"]
        for r in rows:
            assert 0 < r.scale <= 1
            assert r.nnz > 0

    def test_speedup_accessor(self, rows):
        r = rows[0]
        expected = r.scores["yaspmv"].gflops / r.scores["cusp"].gflops
        assert r.speedup(over="cusp") == pytest.approx(expected)

    def test_render_comparison(self, rows):
        text = render_comparison(rows, "gtx680", "Figure 13")
        assert "Figure 13" in text
        assert "H-mean" in text
        for name in ("QCD", "Circuit", "yaSpMV", "CUSPARSE"):
            assert name in text

    def test_render_speedups(self, rows):
        text = render_speedups(rows)
        assert "vs CUSPARSE" in text
        assert "%" in text


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bbb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1  # all rows padded to equal width


class TestRenderBars:
    def test_bars_scale_to_max(self):
        from repro.bench import render_bars

        text = render_bars({"a": 10.0, "b": 5.0}, width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10
        assert "10.00 GFLOPS" in lines[0]

    def test_minimum_one_mark(self):
        from repro.bench import render_bars

        text = render_bars({"big": 1000.0, "tiny": 0.1})
        assert text.splitlines()[1].count("#") == 1

    def test_empty(self):
        from repro.bench import render_bars

        assert render_bars({}) == ""
