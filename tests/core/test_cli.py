"""Tests for the command-line interface."""

import numpy as np
import pytest
from scipy import sparse

from repro.cli import build_parser, main
from repro.matrices import write_matrix_market


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_defaults(self):
        args = build_parser().parse_args(["tune", "QCD"])
        assert args.device == "gtx680"
        assert args.mode == "pruned"
        assert not args.emit_opencl

    def test_rejects_unknown_device(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["multiply", "QCD", "--device", "h100"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "gtx680" in out and "bccoo" in out and "Webbase" in out

    def test_footprint_suite_matrix(self, capsys):
        assert main(["footprint", "Circuit", "--cap", "20000"]) == 0
        out = capsys.readouterr().out
        assert "BCCOO" in out and "COO" in out

    def test_multiply_verifies(self, capsys):
        assert main(["multiply", "QCD", "--cap", "20000"]) == 0
        out = capsys.readouterr().out
        assert "GFLOPS" in out and "max |y - A@x|" in out

    def test_tune_emits_opencl(self, capsys):
        assert main(["tune", "Economics", "--cap", "8000", "--emit-opencl"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out
        assert "__kernel void yaspmv" in out

    def test_compare(self, capsys):
        assert main(["compare", "Economics", "--cap", "8000"]) == 0
        out = capsys.readouterr().out
        assert "yaspmv" in out and "cusparse" in out

    def test_mtx_file_input(self, tmp_path, capsys):
        A = sparse.random(40, 40, density=0.2, random_state=0, format="csr")
        path = tmp_path / "m.mtx"
        write_matrix_market(path, A)
        assert main(["footprint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "nnz" in out

    def test_verify_clean_matrix(self, capsys):
        assert main(["verify", "Economics", "--cap", "8000"]) == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out
        assert "row_stop_count" in out  # format invariants ran
        assert "sampled_reference" in out  # full reference check ran

    def test_verify_mtx_file(self, tmp_path, capsys):
        A = sparse.random(50, 50, density=0.15, random_state=1, format="csr")
        path = tmp_path / "v.mtx"
        write_matrix_market(path, A)
        assert main(["verify", str(path)]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_profile_prints_spans_and_metrics(self, capsys):
        assert main(["profile", "Economics", "--cap", "8000"]) == 0
        out = capsys.readouterr().out
        # Span tree covers prepare -> tune -> convert -> execute.
        assert "engine.prepare" in out
        assert "tuner.tune" in out
        assert "format.convert" in out
        assert "engine.multiply" in out
        assert "kernel.yaspmv" in out
        # Metrics table includes plan-cache and fallback counters.
        assert "tuner.plan_cache.misses" in out
        assert 'fallback.stage_used{stage="tuned"}' in out

    def test_profile_json_trace(self, tmp_path, capsys):
        from repro.obs import load_jsonl

        trace = tmp_path / "prof.jsonl"
        assert main(
            ["profile", "Economics", "--cap", "8000", "--json", str(trace)]
        ) == 0
        roots = load_jsonl(trace.read_text())
        names = {s.name for r in roots for s in r.walk()}
        assert {"engine.prepare", "tuner.tune", "engine.multiply"} <= names

    def test_profile_with_fault_spec(self, capsys):
        assert main(
            [
                "profile", "Economics", "--cap", "8000",
                "--fault", "nan_partial:p=1.0,count=1,seed=3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert 'fault.injections{site="kernel.nan_partial"}' in out
        assert "fallback.stage_failed" in out

    def test_tune_trace_matches_run(self, tmp_path, capsys):
        from repro.obs import load_jsonl

        trace = tmp_path / "tune.jsonl"
        assert main(
            [
                "tune", "Economics", "--cap", "8000",
                "--workers", "2", "--trace", str(trace),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "spans" in out
        roots = load_jsonl(trace.read_text())
        spans = [s for r in roots for s in r.walk()]
        candidates = [s for s in spans if s.name == "tuner.candidate"]
        assert candidates
        evaluated = [s for s in candidates if "sim_time_s" in s.attrs]
        # The printed summary counts the same evaluations the trace holds.
        assert f"evaluated {len(evaluated)} configurations" in out

    def test_store_roundtrip_via_cli(self, tmp_path, capsys):
        store = tmp_path / "store.json"
        assert main(["tune", "Economics", "--cap", "8000", "--store", str(store)]) == 0
        assert store.exists()
        out1 = capsys.readouterr().out
        assert "saved configuration" in out1
        # multiply consults the store (no second search output needed;
        # just verify it runs clean with the store argument).
        assert main(
            ["multiply", "Economics", "--cap", "8000", "--store", str(store)]
        ) == 0


class TestServeCommand:
    def test_serve_replays_and_verifies(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.jsonl"
        reqs.write_text(
            '{"matrix": "QCD", "count": 6, "cap": 20000}\n'
            '{"matrix": "QCD", "count": 2, "cap": 20000, "seed": 3}\n'
        )
        assert main(["serve", "--requests", str(reqs), "--sync"]) == 0
        out = capsys.readouterr().out
        assert "requests : 8 (8 ok, 0 failed)" in out
        assert "cache" in out

    def test_serve_verbose_prints_span_tree(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.jsonl"
        reqs.write_text('{"matrix": "QCD", "count": 3, "cap": 20000}\n')
        assert main(["serve", "--requests", str(reqs), "--sync", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "serve.batch" in out
        assert "engine.prepare" in out

    def test_serve_bad_request_file(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.jsonl"
        reqs.write_text('{"count": 1}\n')
        assert main(["serve", "--requests", str(reqs), "--sync"]) == 2
        err = capsys.readouterr().err
        assert "matrix" in err


class TestBackendFlag:
    """--backend: shared across every engine-constructing subcommand."""

    @pytest.mark.parametrize(
        "cmd", ["tune", "multiply", "profile", "verify", "serve", "chaos"]
    )
    def test_flag_exists_with_faithful_default(self, cmd):
        argv = {
            "serve": ["serve", "--requests", "x.jsonl"],
            "chaos": ["chaos"],
        }.get(cmd, [cmd, "QCD"])
        args = build_parser().parse_args(argv)
        assert args.backend == "faithful"

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["multiply", "QCD", "--backend", "warp"])

    def test_multiply_fast_backend(self, capsys):
        assert main(
            ["multiply", "QCD", "--cap", "20000", "--backend", "fast"]
        ) == 0
        out = capsys.readouterr().out
        assert "max |y - A@x|" in out

    def test_verify_fast_backend(self, capsys):
        assert main(
            ["verify", "Circuit", "--cap", "8000", "--backend", "fast"]
        ) == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out

    def test_bench_gate(self, tmp_path, capsys):
        out_path = tmp_path / "kernels.json"
        assert main(
            ["bench", "--cap", "4000", "--repeats", "1",
             "--out", str(out_path)]
        ) == 0
        import json

        blob = json.loads(out_path.read_text())
        assert blob["kind"] == "bench_kernels"
        assert blob["all_bit_identical"] is True
        out = capsys.readouterr().out
        assert "bit-identical: True" in out
