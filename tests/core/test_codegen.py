"""Tests for the OpenCL source generator."""

import pytest

from repro.codegen import generate_kernel_source, kernel_name, source_fingerprint
from repro.kernels import YaSpMVConfig
from repro.tuning import TuningPoint


class TestSpecialization:
    def test_defines_reflect_point(self):
        p = TuningPoint(
            block_height=2,
            block_width=4,
            bit_word="uint16",
            kernel=YaSpMVConfig(workgroup_size=128, strategy=2, tile_size=8),
        )
        src = generate_kernel_source(p)
        assert "#define BLOCK_H 2" in src
        assert "#define BLOCK_W 4" in src
        assert "#define WG_SIZE 128" in src
        assert "#define TILE 8" in src
        assert "#define FLAG_BITS 16" in src
        assert "#define FLAG_WORD ushort" in src

    def test_strategy_bodies_differ(self):
        s1 = generate_kernel_source(
            TuningPoint(kernel=YaSpMVConfig(strategy=1, reg_size=16))
        )
        s2 = generate_kernel_source(
            TuningPoint(kernel=YaSpMVConfig(strategy=2, tile_size=16))
        )
        assert "intermediate_sums" in s1 and "REG_SUMS" in s1
        assert "result_cache" in s2 and "CACHE_ENTRIES" in s2
        assert "Figure 11" in s1 and "Figure 12" in s2

    def test_adjacent_vs_second_kernel(self):
        adj = generate_kernel_source(
            TuningPoint(kernel=YaSpMVConfig(cross_wg="adjacent"))
        )
        two = generate_kernel_source(
            TuningPoint(kernel=YaSpMVConfig(cross_wg="second_kernel"))
        )
        assert "adjacent synchronization" in adj
        assert "two-kernel variant" in two

    def test_column_paths(self):
        compressed = generate_kernel_source(TuningPoint(col_compress=True))
        raw = generate_kernel_source(
            TuningPoint(kernel=YaSpMVConfig(fine_grain=False))
        )
        assert "col_delta" in compressed and "col_fallback" in compressed
        assert "const int* restrict col_index" in raw

    def test_texture_toggle(self):
        on = generate_kernel_source(TuningPoint())
        off = generate_kernel_source(
            TuningPoint(kernel=YaSpMVConfig(use_texture=False))
        )
        assert "USE_TEXTURE" in on
        assert "USE_TEXTURE" not in off

    def test_fine_grain_early_check(self):
        src = generate_kernel_source(TuningPoint(kernel=YaSpMVConfig(fine_grain=True)))
        assert "early check" in src

    def test_atomic_ids(self):
        src = generate_kernel_source(
            TuningPoint(kernel=YaSpMVConfig(workgroup_ids="atomic"))
        )
        assert "atomic_add" in src

    def test_plus_gets_combine_kernel(self):
        plain = generate_kernel_source(TuningPoint())
        plus = generate_kernel_source(TuningPoint(slice_count=4))
        assert "yaspmv_slice_combine" not in plain
        assert "yaspmv_slice_combine" in plus
        assert "#define SLICES 4" in plus


class TestIdentity:
    def test_same_plan_key_same_source(self):
        a = TuningPoint(kernel=YaSpMVConfig(workgroup_size=256))
        b = TuningPoint(kernel=YaSpMVConfig(workgroup_size=256))
        assert a.plan_key() == b.plan_key()
        assert generate_kernel_source(a) == generate_kernel_source(b)
        assert source_fingerprint(a) == source_fingerprint(b)

    def test_different_plan_key_different_source(self):
        # The plan cache's premise: distinct keys <=> distinct binaries.
        points = [
            TuningPoint(),
            TuningPoint(block_height=2),
            TuningPoint(bit_word="uint8"),
            TuningPoint(kernel=YaSpMVConfig(strategy=1, reg_size=8)),
            TuningPoint(kernel=YaSpMVConfig(workgroup_size=64)),
            TuningPoint(slice_count=4),
        ]
        fingerprints = {source_fingerprint(p) for p in points}
        assert len(fingerprints) == len(points)

    def test_kernel_name_is_identifier(self):
        name = kernel_name(TuningPoint(slice_count=8))
        assert name.isidentifier()
        assert name.endswith("_plus")

    def test_balanced_braces(self):
        for p in (
            TuningPoint(),
            TuningPoint(slice_count=4),
            TuningPoint(kernel=YaSpMVConfig(strategy=1, reg_size=4)),
        ):
            src = generate_kernel_source(p)
            assert src.count("{") == src.count("}")
