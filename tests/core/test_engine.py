"""Tests for the public engine API."""

import numpy as np
import pytest

from repro import SpMVEngine, yaspmv
from repro.gpu import GTX480, GTX680
from repro.tuning import TuningPoint


class TestEngine:
    def test_prepare_and_multiply(self, random_matrix, rng):
        A = random_matrix(nrows=150, ncols=150, density=0.05)
        x = rng.standard_normal(150)
        eng = SpMVEngine("gtx680")
        prep = eng.prepare(A)
        res = eng.multiply(prep, x)
        np.testing.assert_allclose(res.y, A @ x, atol=1e-9)
        assert res.gflops > 0
        assert res.time_s > 0
        assert prep.tuning is not None

    def test_prepare_once_multiply_many(self, random_matrix, rng):
        A = random_matrix(nrows=100, ncols=100, density=0.08)
        eng = SpMVEngine("gtx680")
        prep = eng.prepare(A)
        for _ in range(3):
            x = rng.standard_normal(100)
            np.testing.assert_allclose(eng.multiply(prep, x).y, A @ x, atol=1e-9)

    def test_explicit_point_skips_tuning(self, random_matrix, rng):
        A = random_matrix()
        eng = SpMVEngine("gtx680")
        prep = eng.prepare(A, point=TuningPoint())
        assert prep.tuning is None
        x = rng.standard_normal(A.shape[1])
        np.testing.assert_allclose(eng.multiply(prep, x).y, A @ x, atol=1e-9)

    def test_bccoo_plus_point(self, random_matrix, rng):
        A = random_matrix(nrows=60, ncols=120)
        eng = SpMVEngine("gtx680")
        prep = eng.prepare(A, point=TuningPoint(slice_count=4))
        assert prep.point.format_name == "bccoo+"
        x = rng.standard_normal(120)
        np.testing.assert_allclose(eng.multiply(prep, x).y, A @ x, atol=1e-9)

    def test_device_spec_accepted(self, random_matrix, rng):
        eng = SpMVEngine(GTX480)
        A = random_matrix()
        x = rng.standard_normal(A.shape[1])
        res = eng.multiply(eng.prepare(A, point=TuningPoint()), x)
        np.testing.assert_allclose(res.y, A @ x, atol=1e-9)
        assert res.time_s > 0

    def test_one_shot(self, random_matrix, rng):
        A = random_matrix(nrows=100, ncols=100)
        x = rng.standard_normal(100)
        np.testing.assert_allclose(yaspmv(A, x), A @ x, atol=1e-9)

    def test_tuning_kwargs_trim_search(self, random_matrix):
        A = random_matrix(nrows=120, ncols=120, density=0.05)
        full = SpMVEngine("gtx680")
        trimmed = SpMVEngine(
            "gtx680",
            tuning_kwargs=dict(
                pruned_kwargs=dict(
                    keep_block_dims=1,
                    workgroup_sizes=(64,),
                    bit_words=("uint8",),
                )
            ),
        )
        full_prep = full.prepare(A, keep_history=True)
        trim_prep = trimmed.prepare(A, keep_history=True)
        assert trim_prep.tuning.evaluated < full_prep.tuning.evaluated / 3

    def test_stats_exposed(self, random_matrix, rng):
        A = random_matrix()
        eng = SpMVEngine("gtx680")
        res = eng.multiply(eng.prepare(A, point=TuningPoint()), rng.standard_normal(A.shape[1]))
        assert res.stats.dram_read_bytes > 0
        assert res.breakdown.bound in ("memory", "compute")


class TestUnifiedExecutionAPI:
    """The one-shot overload, the removed alias, and resilient SpMM."""

    def test_multiply_accepts_raw_matrix(self, random_matrix, rng):
        A = random_matrix(nrows=90, ncols=90)
        x = rng.standard_normal(90)
        res = SpMVEngine("gtx680").multiply(A, x)
        np.testing.assert_allclose(res.y, A @ x, atol=1e-9)

    def test_multiply_many_accepts_raw_matrix(self, random_matrix, rng):
        A = random_matrix(nrows=90, ncols=90)
        X = rng.standard_normal((90, 3))
        res = SpMVEngine("gtx680").multiply_many(A, X)
        np.testing.assert_allclose(res.y, A @ X, atol=1e-9)
        assert res.nnz == A.nnz * 3

    def test_multiply_matrix_alias_removed(self, random_matrix, rng):
        # The deprecated alias is gone; ``multiply`` accepts raw
        # matrices directly (tested above).
        assert not hasattr(SpMVEngine("gtx680"), "multiply_matrix")

    def test_multiply_many_validated(self, random_matrix, rng):
        A = random_matrix(nrows=90, ncols=90)
        X = rng.standard_normal((90, 4))
        eng = SpMVEngine("gtx680", validate=True, policy="permissive")
        res = eng.multiply_many(eng.prepare(A, point=TuningPoint()), X)
        np.testing.assert_allclose(res.y, A @ X, atol=1e-9)
        # Same resilience policy as multiply: the trail is reported.
        assert res.failure is not None
        assert res.failure.fallback_used == "tuned"
        assert res.failure.attempts[0].validation.ok
        assert res.nnz == A.nnz * 4

    def test_max_batch_width_matches_kernel_limit(self, random_matrix, rng):
        # The public bound must agree with what run_multi actually
        # accepts: the widest batch runs, one column more is rejected
        # for shared memory.
        from repro.errors import KernelConfigError, ValidationError

        A = random_matrix(nrows=80, ncols=80)
        eng = SpMVEngine("gtx680")
        prep = eng.prepare(A, point=TuningPoint())
        k = eng.max_batch_width(prep)
        assert k >= 1
        X = rng.standard_normal((80, k))
        np.testing.assert_allclose(eng.multiply_many(prep, X).y, A @ X, atol=1e-9)
        with pytest.raises(KernelConfigError):
            eng.multiply_many(prep, rng.standard_normal((80, k + 1)))
        with pytest.raises(ValidationError):
            eng.max_batch_width(A)  # raw matrices are not accepted

    def test_multiply_many_fallback_chain(self, random_matrix, rng):
        from repro.fault import FaultPlan

        A = random_matrix(nrows=90, ncols=90)
        X = rng.standard_normal((90, 2))
        plan = FaultPlan.single("format.column_truncate", seed=1, count=None)
        eng = SpMVEngine(
            "gtx680", policy="permissive", fault_plan=plan, max_retries=0
        )
        res = eng.multiply_many(eng.prepare(A, point=TuningPoint()), X)
        # Every simulated stage is corrupted; the CSR reference (fault
        # injection disabled) must deliver the exact product.
        np.testing.assert_allclose(res.y, A @ X, atol=1e-9)
        assert res.degraded
        assert res.failure.fallback_used == "csr-reference"


class TestResultProtocol:
    """``summary()``/``to_dict()``: the exporters' interchange surface."""

    def test_to_dict_is_jsonable(self, random_matrix, rng):
        import json

        A = random_matrix(nrows=90, ncols=90)
        x = rng.standard_normal(90)
        res = SpMVEngine("gtx680").multiply(A, x)
        d = json.loads(json.dumps(res.to_dict()))
        assert d["kind"] == "spmv_result"
        assert d["nnz"] == A.nnz
        assert d["time_s"] > 0
        assert d["breakdown"]["t_total"] == pytest.approx(d["time_s"])
        assert d["stats"]["n_launches"] >= 1

    def test_summary_mentions_throughput_and_fallback(self, random_matrix, rng):
        A = random_matrix(nrows=90, ncols=90)
        x = rng.standard_normal(90)
        eng = SpMVEngine("gtx680", validate=True, policy="permissive")
        res = eng.multiply(eng.prepare(A, point=TuningPoint()), x)
        text = res.summary()
        assert "GFLOPS" in text
        assert "[fallback: tuned]" in text


class TestReferenceCsrThreadSafety:
    def test_concurrent_lazy_decode_yields_one_csr(self, random_matrix):
        import threading

        A = random_matrix(nrows=120, ncols=120)
        prep = SpMVEngine("gtx680").prepare(A, point=TuningPoint())
        results = []
        barrier = threading.Barrier(8)

        def decode():
            barrier.wait()
            results.append(prep.reference_csr())

        threads = [threading.Thread(target=decode) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        # Double-checked locking: every caller sees the same decoded object.
        assert all(r is results[0] for r in results)
        np.testing.assert_allclose(results[0].toarray(), A.toarray(), atol=1e-12)


class TestMultiplyManyVectorSequences:
    """Regression: a sequence of 1-D vectors must coalesce into ONE SpMM
    dispatch (the serving layer's batch shape), not a per-vector loop,
    and each output column must be bit-identical to a sequential
    multiply of the corresponding vector."""

    def test_list_of_vectors_single_dispatch(self, random_matrix, rng):
        from repro import Observer

        obs = Observer()
        eng = SpMVEngine("gtx680", observer=obs)
        A = random_matrix(nrows=100, ncols=100)
        prep = eng.prepare(A, point=TuningPoint())
        xs = [rng.standard_normal(100) for _ in range(5)]
        result = eng.multiply_many(prep, xs)
        # Exactly one SpMM kernel dispatch; zero single-vector dispatches.
        assert len(obs.tracer.find_all("kernel.yaspmm")) == 1
        assert len(obs.tracer.find_all("kernel.yaspmv")) == 0
        assert result.y.shape == (100, 5)
        for j, x in enumerate(xs):
            assert np.array_equal(result.y[:, j], eng.multiply(prep, x).y)

    def test_tuple_of_vectors_accepted(self, random_matrix, rng):
        eng = SpMVEngine("gtx680")
        A = random_matrix(nrows=60, ncols=60)
        prep = eng.prepare(A, point=TuningPoint())
        xs = tuple(rng.standard_normal(60) for _ in range(3))
        result = eng.multiply_many(prep, xs)
        expected = np.column_stack([A @ x for x in xs])
        np.testing.assert_allclose(result.y, expected, atol=1e-9)
        # nnz accounting scales with the batch width.
        assert result.nnz == prep.nnz * 3

    def test_empty_sequence_rejected(self, random_matrix):
        from repro.errors import ValidationError

        eng = SpMVEngine("gtx680")
        A = random_matrix(nrows=40, ncols=40)
        prep = eng.prepare(A, point=TuningPoint())
        with pytest.raises(ValidationError):
            eng.multiply_many(prep, [])

    def test_mismatched_lengths_rejected(self, random_matrix, rng):
        from repro.errors import ValidationError

        eng = SpMVEngine("gtx680")
        A = random_matrix(nrows=40, ncols=40)
        prep = eng.prepare(A, point=TuningPoint())
        with pytest.raises(ValidationError):
            eng.multiply_many(prep, [rng.standard_normal(40), rng.standard_normal(39)])

    def test_non_1d_members_rejected(self, random_matrix, rng):
        from repro.errors import ValidationError

        eng = SpMVEngine("gtx680")
        A = random_matrix(nrows=40, ncols=40)
        prep = eng.prepare(A, point=TuningPoint())
        with pytest.raises(ValidationError):
            eng.multiply_many(prep, [rng.standard_normal((40, 2))])

    def test_resilient_path_also_coalesces(self, random_matrix, rng):
        """Under validation/permissive policy the sequence shape still
        goes through the fallback chain as one multi-RHS execution."""
        eng = SpMVEngine("gtx680", validate=True, policy="permissive")
        A = random_matrix(nrows=80, ncols=80)
        prep = eng.prepare(A, point=TuningPoint())
        xs = [rng.standard_normal(80) for _ in range(4)]
        result = eng.multiply_many(prep, xs)
        expected = np.column_stack([A @ x for x in xs])
        np.testing.assert_allclose(result.y, expected, atol=1e-9)


class TestBackendAPI:
    """``backend=`` selection: ctor, setter, per-call, capabilities."""

    def test_ctor_and_setter(self, random_matrix, rng):
        from repro.backends import ExecutionBackend

        eng = SpMVEngine("gtx680", backend="fast")
        assert eng.backend.name == "fast"
        assert isinstance(eng.backend, ExecutionBackend)
        eng.backend = "auto"
        assert eng.backend.name == "auto"
        A = random_matrix(nrows=60, ncols=60)
        x = rng.standard_normal(60)
        res = eng.multiply(eng.prepare(A, point=TuningPoint()), x)
        np.testing.assert_allclose(res.y, A @ x, atol=1e-9)

    def test_unknown_backend_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            SpMVEngine("gtx680", backend="sparta")

    def test_per_call_override_does_not_stick(self, random_matrix, rng):
        eng = SpMVEngine("gtx680")
        A = random_matrix(nrows=50, ncols=50)
        prep = eng.prepare(A, point=TuningPoint())
        x = rng.standard_normal(50)
        fast = eng.multiply(prep, x, backend="fast")
        faithful = eng.multiply(prep, x)
        assert np.array_equal(fast.y, faithful.y)
        assert eng.backend.name == "faithful"

    def test_capabilities_lists_all_backends(self):
        caps = SpMVEngine("gtx680", backend="fast").capabilities()
        assert caps["backend"] == "fast"
        assert set(caps["backends"]) >= {"faithful", "fast", "auto"}
        assert caps["backends"]["fast"]["vectorized"]
        assert not caps["backends"]["faithful"]["vectorized"]
        import json

        json.dumps(caps)  # must stay JSON-able end to end

    def test_prepared_to_dict_and_summary(self, random_matrix):
        eng = SpMVEngine("gtx680")
        A = random_matrix(nrows=70, ncols=70)
        prep = eng.prepare(A, point=TuningPoint(slice_count=2))
        d = prep.to_dict()
        assert d["kind"] == "prepared_matrix"
        assert d["format"] == "bccoo+"
        assert d["slices"] == 2
        assert d["shared"] is False and d["shared_bytes"] == 0
        assert "bccoo+" in prep.summary()

    def test_prepared_shared_summary(self, random_matrix):
        eng = SpMVEngine("gtx680")
        A = random_matrix(nrows=70, ncols=70)
        prep = eng.prepare(A, point=TuningPoint(), share=True)
        try:
            d = prep.to_dict()
            assert d["shared"] is True
            assert d["shared_bytes"] == prep.arena.nbytes > 0
            assert "shared" in prep.summary()
        finally:
            prep.release_shared()
