"""Tests for the exception hierarchy: structure and picklability.

Errors cross process boundaries (multiprocessing tuning sweeps, pytest
workers), so every ``ReproError`` subclass must survive a pickle
round-trip with its args and structured context intact.
"""

import pickle

import pytest

import repro.errors as errors_mod
from repro.errors import FaultInjectedError, ReproError, ValidationError


def all_repro_error_classes():
    out = []
    for name in dir(errors_mod):
        obj = getattr(errors_mod, name)
        if isinstance(obj, type) and issubclass(obj, ReproError):
            out.append(obj)
    return out


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        classes = all_repro_error_classes()
        assert len(classes) >= 8  # the documented taxonomy
        for cls in classes:
            assert issubclass(cls, ReproError)

    def test_single_except_catches_everything(self):
        for cls in all_repro_error_classes():
            with pytest.raises(ReproError):
                raise cls("boom")


class TestPickling:
    @pytest.mark.parametrize(
        "cls", all_repro_error_classes(), ids=lambda c: c.__name__
    )
    def test_round_trips_args(self, cls):
        exc = cls("something broke")
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is cls
        assert clone.args == exc.args
        assert str(clone) == "something broke"

    def test_validation_error_context_survives(self):
        exc = ValidationError(
            "check failed", check="row_stop_count", detail="12 != 13"
        )
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.check == "row_stop_count"
        assert clone.detail == "12 != 13"
        assert str(clone) == "check failed"

    def test_fault_injected_error_context_survives(self):
        exc = FaultInjectedError(
            "fault detected", site="sync.stale_grp_sum", seed=7, workgroup=3
        )
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.site == "sync.stale_grp_sum"
        assert clone.seed == 7
        assert clone.workgroup == 3

    def test_context_defaults_to_none(self):
        exc = pickle.loads(pickle.dumps(FaultInjectedError("plain")))
        assert exc.site is None and exc.seed is None and exc.workgroup is None
