"""Tests for the registry plumbing and the exception hierarchy."""

import pytest

from repro import errors
from repro.formats.base import SparseFormat, register_format
from repro.kernels.base import SpMVKernel, register_kernel


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            errors.FormatError,
            errors.FormatNotApplicableError,
            errors.KernelConfigError,
            errors.DeviceError,
            errors.TuningError,
            errors.MatrixGenerationError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_not_applicable_is_format_error(self):
        # Callers that catch FormatError also see N/A formats.
        assert issubclass(errors.FormatNotApplicableError, errors.FormatError)

    def test_single_except_catches_everything(self, random_matrix):
        from repro.formats import ELLMatrix

        with pytest.raises(errors.ReproError):
            ELLMatrix.from_scipy(random_matrix(), max_expansion=0.0001)


class TestFormatRegistry:
    def test_duplicate_name_rejected(self):
        class Dup(SparseFormat):
            name = "coo"  # already taken

            @classmethod
            def from_scipy(cls, matrix, **params):  # pragma: no cover
                raise NotImplementedError

            def to_scipy(self):  # pragma: no cover
                raise NotImplementedError

            def footprint(self, sizes=None):  # pragma: no cover
                raise NotImplementedError

            def multiply(self, x):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="duplicate"):
            register_format(Dup)

    def test_empty_name_rejected(self):
        class NoName(SparseFormat):
            name = ""

            @classmethod
            def from_scipy(cls, matrix, **params):  # pragma: no cover
                raise NotImplementedError

            def to_scipy(self):  # pragma: no cover
                raise NotImplementedError

            def footprint(self, sizes=None):  # pragma: no cover
                raise NotImplementedError

            def multiply(self, x):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="non-empty"):
            register_format(NoName)

    def test_bad_shape_rejected(self):
        from repro.formats import COOMatrix

        with pytest.raises(errors.FormatError, match="positive"):
            COOMatrix((0, 5), [], [], [])


class TestKernelRegistry:
    def test_duplicate_name_rejected(self):
        class Dup(SpMVKernel):
            name = "yaspmv"
            format_name = "bccoo"

            def run(self, fmt, x, device, **config):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="duplicate"):
            register_kernel(Dup)

    def test_empty_name_rejected(self):
        class NoName(SpMVKernel):
            name = ""
            format_name = "coo"

            def run(self, fmt, x, device, **config):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="non-empty"):
            register_kernel(NoName)
