"""Tests for the iterative-solver layer."""

import numpy as np
import pytest
from scipy import sparse
from scipy.sparse.linalg import eigsh

from repro import SpMVEngine
from repro.errors import ReproError, ValidationError
from repro.fault import Deadline, FaultPlan
from repro.solvers import (
    SolveResult,
    bicgstab,
    conjugate_gradient,
    gmres,
    jacobi,
    power_method,
    solve,
)
from repro.tuning import TuningPoint


def spd_system(n=150):
    A = sparse.diags(
        [np.full(n - 1, -1.0), np.full(n, 4.0), np.full(n - 1, -1.0)], [-1, 0, 1]
    ).tocsr()
    return A, np.ones(n)


def nonsymmetric_system(n=120, seed=7):
    rng = np.random.default_rng(seed)
    A = sparse.random(n, n, density=0.05, random_state=seed, format="csr")
    A = A + sparse.diags(np.full(n, 10.0))  # well-conditioned
    return A.tocsr(), rng.standard_normal(n)


@pytest.fixture(scope="module")
def engine():
    return SpMVEngine("gtx680")


class TestConjugateGradient:
    def test_solves_spd(self):
        A, b = spd_system()
        res = conjugate_gradient(A, b, tol=1e-11)
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-8)

    def test_history_monotonic_tail(self):
        A, b = spd_system()
        res = conjugate_gradient(A, b)
        assert res.history[0] > res.history[-1]
        assert res.residual_norm == res.history[-1]

    def test_counts_spmv_time(self):
        A, b = spd_system()
        res = conjugate_gradient(A, b)
        assert res.spmv_count == res.iterations + 1  # +1 initial residual
        assert res.spmv_time_s > 0

    def test_prepared_matrix_reuse(self, engine):
        A, b = spd_system()
        prep = engine.prepare(A, point=TuningPoint())
        res = conjugate_gradient(prep, b, engine=engine)
        assert res.converged

    def test_prepared_without_engine_rejected(self, engine):
        A, b = spd_system()
        prep = engine.prepare(A, point=TuningPoint())
        with pytest.raises(ReproError, match="engine"):
            conjugate_gradient(prep, b)

    def test_rectangular_rejected(self):
        A = sparse.random(10, 20, density=0.3, random_state=0, format="csr")
        with pytest.raises(ReproError, match="square"):
            conjugate_gradient(A, np.ones(10))

    def test_max_iter_reported(self):
        A, b = spd_system()
        res = conjugate_gradient(A, b, tol=1e-30, max_iter=3)
        assert not res.converged
        assert res.iterations == 3


class TestBiCGSTAB:
    def test_solves_nonsymmetric(self):
        A, b = nonsymmetric_system()
        res = bicgstab(A, b, tol=1e-11)
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-7)

    def test_agrees_with_cg_on_spd(self):
        A, b = spd_system()
        x_cg = conjugate_gradient(A, b, tol=1e-12).x
        x_bi = bicgstab(A, b, tol=1e-12).x
        np.testing.assert_allclose(x_bi, x_cg, atol=1e-8)


class TestJacobi:
    def test_solves_diagonally_dominant(self):
        A, b = nonsymmetric_system()
        res = jacobi(A, b, tol=1e-11)
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-7)

    def test_zero_diagonal_rejected(self):
        A = sparse.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ReproError, match="diagonal"):
            jacobi(A, np.ones(2))


class TestGMRES:
    def test_solves_nonsymmetric(self):
        A, b = nonsymmetric_system()
        res = gmres(A, b, tol=1e-11)
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-7)

    def test_agrees_with_bicgstab(self):
        A, b = nonsymmetric_system()
        x_gm = gmres(A, b, tol=1e-12).x
        x_bi = bicgstab(A, b, tol=1e-12).x
        np.testing.assert_allclose(x_gm, x_bi, atol=1e-7)

    def test_restart_cycles(self):
        # A restart shorter than the iteration count forces several
        # cycles; each costs one extra SpMV for the true residual.
        A, b = nonsymmetric_system()
        res = gmres(A, b, restart=5, tol=1e-11, max_iter=500)
        assert res.converged
        assert res.spmv_count > res.iterations + 1
        np.testing.assert_allclose(A @ res.x, b, atol=1e-7)

    def test_residual_history_per_inner_iteration(self):
        A, b = nonsymmetric_system()
        res = gmres(A, b, tol=1e-11)
        assert len(res.history) == res.iterations + 1
        assert res.history[0] > res.history[-1]

    def test_solves_spd_too(self):
        A, b = spd_system()
        x_gm = gmres(A, b, tol=1e-12).x
        x_cg = conjugate_gradient(A, b, tol=1e-12).x
        np.testing.assert_allclose(x_gm, x_cg, atol=1e-8)


class TestSolveAPI:
    """The redesigned single surface: solve(A, b, method=...)."""

    @pytest.mark.parametrize("method", ["cg", "bicgstab", "gmres", "jacobi"])
    def test_every_method_solves(self, method):
        A, b = nonsymmetric_system() if method != "cg" else spd_system()
        res = solve(A, b, method=method, tol=1e-11)
        assert res.converged
        assert res.method == method
        np.testing.assert_allclose(A @ res.x, b, atol=1e-7)

    def test_unknown_method_rejected(self):
        A, b = spd_system()
        with pytest.raises(ValidationError, match="method"):
            solve(A, b, method="sor")

    def test_wrong_rhs_length_rejected(self):
        A, _ = spd_system()
        with pytest.raises(ValidationError, match="length"):
            solve(A, np.ones(7))

    def test_wrappers_delegate(self):
        # The wrapper and the surface must produce the same object
        # graph: identical iterates, counters and method tag.
        A, b = spd_system()
        via_wrapper = conjugate_gradient(A, b, tol=1e-12)
        via_solve = solve(A, b, method="cg", tol=1e-12)
        assert np.array_equal(via_wrapper.x, via_solve.x)
        assert via_wrapper.history == via_solve.history
        assert via_wrapper.method == via_solve.method == "cg"

    def test_backend_option_mirrors_engine(self):
        A, b = spd_system()
        res_fast = solve(A, b, backend="fast")
        res_faithful = solve(A, b, backend="faithful")
        assert np.array_equal(res_fast.x, res_faithful.x)

    def test_keep_iterates(self):
        A, b = spd_system()
        res = solve(A, b, method="cg", keep_iterates=True)
        assert len(res.iterates) == res.iterations
        assert np.array_equal(res.iterates[-1], res.x)

    def test_result_protocol(self):
        A, b = spd_system()
        res = solve(A, b, method="cg")
        d = res.to_dict()
        assert d["kind"] == "solve_result"
        assert d["method"] == "cg"
        assert d["converged"] is True
        assert d["iterations"] == res.iterations
        assert d["spmv_retries"] == 0
        assert len(d["history"]) == len(res.history)
        text = res.summary()
        assert "cg" in text and "converged" in text

    def test_deadline_returns_best_so_far(self):
        A, b = spd_system()
        res = solve(A, b, method="cg", deadline=Deadline(0.0))
        assert res.deadline_expired
        assert not res.converged
        assert res.x.shape == b.shape

    def test_deadline_accepts_seconds(self):
        A, b = spd_system()
        res = solve(A, b, method="cg", deadline=30.0)
        assert res.converged
        assert not res.deadline_expired


class TestRetryAccounting:
    """spmv_time_s bills only the successful attempt of each multiply."""

    def test_transient_fault_not_double_billed(self):
        A, b = spd_system()
        clean = solve(A, b, method="cg", backend="faithful")
        faulted = solve(
            A, b, method="cg", backend="faithful",
            fault_plan=FaultPlan.single("kernel.nan_partial", seed=1, count=1),
        )
        assert faulted.spmv_retries == 1
        assert clean.spmv_retries == 0
        # The retried multiply recovered on the tuned path, so the
        # simulated device time must match the clean solve exactly --
        # the failed attempt is reported, never billed.
        assert faulted.spmv_time_s == clean.spmv_time_s
        assert np.array_equal(faulted.x, clean.x)

    def test_retries_surface_in_summary(self):
        A, b = spd_system()
        faulted = solve(
            A, b, method="cg", backend="faithful",
            fault_plan=FaultPlan.single("kernel.nan_partial", seed=1, count=1),
        )
        assert "1 retries" in faulted.summary()


class TestPowerMethod:
    def test_finds_dominant_eigenvalue(self):
        A, _ = spd_system(100)
        res = power_method(A, tol=1e-10, max_iter=20_000)
        lam_ref = eigsh(A, k=1, which="LA", return_eigenvectors=False)[0]
        assert res.eigenvalue == pytest.approx(lam_ref, rel=1e-4)

    def test_eigenvector_quality(self):
        A, _ = spd_system(100)
        res = power_method(A, tol=1e-10, max_iter=20_000)
        ratio = np.linalg.norm(A @ res.x) / np.linalg.norm(res.x)
        assert ratio == pytest.approx(abs(res.eigenvalue), rel=1e-4)

    def test_one_spmv_per_iteration(self):
        A, _ = spd_system(60)
        res = power_method(A, max_iter=50, tol=0.0)
        assert res.spmv_count == res.iterations + 1
