"""Tests for the iterative-solver layer."""

import numpy as np
import pytest
from scipy import sparse
from scipy.sparse.linalg import eigsh

from repro import SpMVEngine
from repro.errors import ReproError
from repro.solvers import (
    SolveResult,
    bicgstab,
    conjugate_gradient,
    jacobi,
    power_method,
)
from repro.tuning import TuningPoint


def spd_system(n=150):
    A = sparse.diags(
        [np.full(n - 1, -1.0), np.full(n, 4.0), np.full(n - 1, -1.0)], [-1, 0, 1]
    ).tocsr()
    return A, np.ones(n)


def nonsymmetric_system(n=120, seed=7):
    rng = np.random.default_rng(seed)
    A = sparse.random(n, n, density=0.05, random_state=seed, format="csr")
    A = A + sparse.diags(np.full(n, 10.0))  # well-conditioned
    return A.tocsr(), rng.standard_normal(n)


@pytest.fixture(scope="module")
def engine():
    return SpMVEngine("gtx680")


class TestConjugateGradient:
    def test_solves_spd(self):
        A, b = spd_system()
        res = conjugate_gradient(A, b, tol=1e-11)
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-8)

    def test_history_monotonic_tail(self):
        A, b = spd_system()
        res = conjugate_gradient(A, b)
        assert res.history[0] > res.history[-1]
        assert res.residual_norm == res.history[-1]

    def test_counts_spmv_time(self):
        A, b = spd_system()
        res = conjugate_gradient(A, b)
        assert res.spmv_count == res.iterations + 1  # +1 initial residual
        assert res.spmv_time_s > 0

    def test_prepared_matrix_reuse(self, engine):
        A, b = spd_system()
        prep = engine.prepare(A, point=TuningPoint())
        res = conjugate_gradient(prep, b, engine=engine)
        assert res.converged

    def test_prepared_without_engine_rejected(self, engine):
        A, b = spd_system()
        prep = engine.prepare(A, point=TuningPoint())
        with pytest.raises(ReproError, match="engine"):
            conjugate_gradient(prep, b)

    def test_rectangular_rejected(self):
        A = sparse.random(10, 20, density=0.3, random_state=0, format="csr")
        with pytest.raises(ReproError, match="square"):
            conjugate_gradient(A, np.ones(10))

    def test_max_iter_reported(self):
        A, b = spd_system()
        res = conjugate_gradient(A, b, tol=1e-30, max_iter=3)
        assert not res.converged
        assert res.iterations == 3


class TestBiCGSTAB:
    def test_solves_nonsymmetric(self):
        A, b = nonsymmetric_system()
        res = bicgstab(A, b, tol=1e-11)
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-7)

    def test_agrees_with_cg_on_spd(self):
        A, b = spd_system()
        x_cg = conjugate_gradient(A, b, tol=1e-12).x
        x_bi = bicgstab(A, b, tol=1e-12).x
        np.testing.assert_allclose(x_bi, x_cg, atol=1e-8)


class TestJacobi:
    def test_solves_diagonally_dominant(self):
        A, b = nonsymmetric_system()
        res = jacobi(A, b, tol=1e-11)
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-7)

    def test_zero_diagonal_rejected(self):
        A = sparse.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ReproError, match="diagonal"):
            jacobi(A, np.ones(2))


class TestPowerMethod:
    def test_finds_dominant_eigenvalue(self):
        A, _ = spd_system(100)
        res = power_method(A, tol=1e-10, max_iter=20_000)
        lam_ref = eigsh(A, k=1, which="LA", return_eigenvectors=False)[0]
        assert res.eigenvalue == pytest.approx(lam_ref, rel=1e-4)

    def test_eigenvector_quality(self):
        A, _ = spd_system(100)
        res = power_method(A, tol=1e-10, max_iter=20_000)
        ratio = np.linalg.norm(A @ res.x) / np.linalg.norm(res.x)
        assert ratio == pytest.approx(abs(res.eigenvalue), rel=1e-4)

    def test_one_spmv_per_iteration(self):
        A, _ = spd_system(60)
        res = power_method(A, max_iter=50, tol=0.0)
        assert res.spmv_count == res.iterations + 1
