"""Tests for the shared utility helpers."""

import numpy as np
import pytest
from scipy import sparse

from repro import util


class TestCeilDiv:
    def test_values(self):
        assert util.ceil_div(0, 4) == 0
        assert util.ceil_div(1, 4) == 1
        assert util.ceil_div(4, 4) == 1
        assert util.ceil_div(5, 4) == 2

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            util.ceil_div(4, 0)
        with pytest.raises(ValueError):
            util.ceil_div(-1, 4)

    def test_round_up(self):
        assert util.round_up(5, 4) == 8
        assert util.round_up(8, 4) == 8
        assert util.round_up(0, 4) == 0


class TestCanonicalization:
    def test_as_csr_merges_duplicates(self):
        A = sparse.coo_matrix(
            (np.array([1.0, 2.0]), (np.array([0, 0]), np.array([1, 1]))),
            shape=(2, 2),
        )
        csr = util.as_csr(A)
        assert csr.nnz == 1
        assert csr[0, 1] == 3.0

    def test_as_csr_drops_explicit_zeros(self):
        A = sparse.csr_matrix(
            (np.array([0.0, 5.0]), (np.array([0, 1]), np.array([0, 1]))),
            shape=(2, 2),
        )
        assert util.as_csr(A).nnz == 1

    def test_as_csr_from_dense(self):
        csr = util.as_csr(np.eye(3))
        assert csr.nnz == 3

    def test_as_coo_sorted_row_major(self, rng):
        A = sparse.random(30, 30, density=0.3, random_state=1)
        coo = util.as_coo_sorted(A)
        key = coo.row.astype(np.int64) * 30 + coo.col
        assert (np.diff(key) > 0).all()


class TestSegments:
    def test_segment_lengths(self):
        stops = np.array([0, 0, 1, 1, 0, 1], dtype=bool)
        assert util.segment_lengths_from_stops(stops).tolist() == [3, 1, 2]

    def test_trailing_open_segment_dropped(self):
        stops = np.array([1, 0, 0], dtype=bool)
        assert util.segment_lengths_from_stops(stops).tolist() == [1]

    def test_run_lengths(self):
        vals, lens = util.run_lengths(np.array([3, 3, 5, 5, 5, 2]))
        assert vals.tolist() == [3, 5, 2]
        assert lens.tolist() == [2, 3, 1]

    def test_run_lengths_empty(self):
        vals, lens = util.run_lengths(np.array([]))
        assert vals.size == 0 and lens.size == 0

    def test_first_true_per_segment(self):
        flags = np.array([0, 0, 1, 0, 0, 0, 0, 1], dtype=bool)
        assert util.first_true_per_segment(flags, 4).tolist() == [2, 3]
        none = np.zeros(4, dtype=bool)
        assert util.first_true_per_segment(none, 4).tolist() == [-1]

    def test_first_true_rejects_ragged(self):
        with pytest.raises(ValueError, match="multiple"):
            util.first_true_per_segment(np.zeros(5, dtype=bool), 4)


class TestPadding:
    def test_pad_to_multiple(self):
        out = util.pad_to_multiple(np.array([1, 2, 3]), 4, fill=9)
        assert out.tolist() == [1, 2, 3, 9]

    def test_no_pad_needed(self):
        arr = np.array([1, 2, 3, 4])
        assert util.pad_to_multiple(arr, 4, 0) is arr

    def test_check_1d(self):
        with pytest.raises(ValueError, match="1-D"):
            util.check_1d("x", np.zeros((2, 2)))

    def test_iter_chunks(self):
        assert list(util.iter_chunks(10, 4)) == [(0, 4), (4, 8), (8, 10)]

    def test_dtype_nbytes(self):
        assert util.dtype_nbytes(np.float32) == 4
        assert util.dtype_nbytes(np.uint8) == 1
