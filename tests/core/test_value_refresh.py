"""Tests for incremental value refresh: ``with_values`` at the format,
prepared-matrix and backend layers.

The contract under test: for a matrix with *identical sparsity
structure* but new values, swapping values into an existing
format/prepared matrix must be exactly equivalent to converting the new
matrix from scratch (``np.array_equal``, not allclose) while reusing
every structural artifact -- bit flags, column storage, tuning point,
and the fast backend's cached gather/scan plan.
"""

import numpy as np
import pytest
from scipy import sparse

from repro import SpMVEngine
from repro.backends import get_backend
from repro.errors import ValidationError
from repro.formats import BCCOOMatrix, BCCOOPlusMatrix
from repro.tuning import TuningPoint


def make_matrix(n=60, density=0.08, seed=3):
    A = sparse.random(n, n, density=density, random_state=seed, format="csr")
    A = A + sparse.eye(n)  # zero-free diagonal keeps every row populated
    return A.tocsr()


def rescaled(A, factor=1.5, seed=9):
    """Same structure, fresh values (none of them zero)."""
    B = A.copy().tocsr()
    rng = np.random.default_rng(seed)
    B.data = B.data * factor + rng.uniform(0.1, 1.0, size=B.data.shape)
    return B


class TestBCCOOWithValues:
    @pytest.mark.parametrize("bh,bw", [(1, 1), (2, 2), (1, 4), (4, 2)])
    def test_matches_fresh_conversion(self, bh, bw):
        A = make_matrix()
        B = rescaled(A)
        fmt = BCCOOMatrix.from_scipy(A, block_height=bh, block_width=bw)
        swapped = fmt.with_values(B)
        fresh = BCCOOMatrix.from_scipy(B, block_height=bh, block_width=bw)
        assert np.array_equal(swapped.values, fresh.values)

    def test_structural_arrays_shared(self):
        A = make_matrix()
        fmt = BCCOOMatrix.from_scipy(A, block_height=2, block_width=2)
        swapped = fmt.with_values(rescaled(A))
        # The structure is reused by identity, not rebuilt: only the
        # value buffer is new.
        assert swapped.flags is fmt.flags
        assert swapped.col_block is fmt.col_block
        assert swapped.values is not fmt.values

    def test_multiply_equals_new_matrix(self):
        A = make_matrix()
        B = rescaled(A)
        fmt = BCCOOMatrix.from_scipy(A, block_height=2, block_width=2)
        x = np.random.default_rng(0).standard_normal(A.shape[1])
        y = fmt.with_values(B).to_scipy() @ x
        np.testing.assert_allclose(y, B @ x, rtol=1e-12, atol=1e-14)

    def test_shape_mismatch_rejected(self):
        A = make_matrix(60)
        fmt = BCCOOMatrix.from_scipy(A)
        with pytest.raises(ValidationError, match="shape"):
            fmt.with_values(make_matrix(50))

    def test_nnz_mismatch_rejected(self):
        A = make_matrix()
        fmt = BCCOOMatrix.from_scipy(A)
        B = A.copy()
        B.data[0] = 0.0  # canonicalization eliminates explicit zeros
        with pytest.raises(ValidationError, match="nnz"):
            fmt.with_values(B)

    def test_structure_mismatch_rejected(self):
        A = make_matrix()
        fmt = BCCOOMatrix.from_scipy(A, block_height=1, block_width=1)
        B = A.tocoo()
        # Same nnz, but one entry moved to a column the format has no
        # block for.
        cols = B.col.copy()
        free = set(range(A.shape[1])) - set(
            B.col[B.row == B.row[0]]
        )
        cols[0] = sorted(free)[-1]
        moved = sparse.coo_matrix(
            (B.data, (B.row, cols)), shape=A.shape
        ).tocsr()
        with pytest.raises(ValidationError, match="structure"):
            fmt.with_values(moved)


class TestBCCOOPlusWithValues:
    @pytest.mark.parametrize("slices", [2, 4])
    def test_matches_fresh_conversion(self, slices):
        A = make_matrix(80)
        B = rescaled(A)
        fmt = BCCOOPlusMatrix.from_scipy(
            A, block_height=2, block_width=1, slice_count=slices
        )
        swapped = fmt.with_values(B)
        fresh = BCCOOPlusMatrix.from_scipy(
            B, block_height=2, block_width=1, slice_count=slices
        )
        assert np.array_equal(swapped.stacked.values, fresh.stacked.values)

    def test_multiply_equals_new_matrix(self):
        A = make_matrix(80)
        B = rescaled(A)
        fmt = BCCOOPlusMatrix.from_scipy(
            A, block_height=1, block_width=1, slice_count=4
        )
        x = np.random.default_rng(1).standard_normal(A.shape[1])
        y = fmt.with_values(B).to_scipy() @ x
        np.testing.assert_allclose(y, B @ x, rtol=1e-12, atol=1e-14)

    def test_shape_mismatch_rejected(self):
        fmt = BCCOOPlusMatrix.from_scipy(make_matrix(80), slice_count=2)
        with pytest.raises(ValidationError, match="shape"):
            fmt.with_values(make_matrix(60))


class TestPreparedWithValues:
    @pytest.fixture(scope="class")
    def engine(self):
        return SpMVEngine("gtx680")

    @pytest.mark.parametrize(
        "point",
        [
            TuningPoint(),
            TuningPoint(block_height=2, block_width=2),
            TuningPoint(slice_count=4),
        ],
        ids=["bccoo-1x1", "bccoo-2x2", "bccoo+"],
    )
    def test_multiply_matches_fresh_prepare(self, engine, point):
        A = make_matrix(100)
        B = rescaled(A)
        prep = engine.prepare(A, point=point)
        refreshed = engine.update_values(prep, B)
        fresh = engine.prepare(B, point=point)
        x = np.random.default_rng(2).standard_normal(A.shape[1])
        y_refreshed = engine.multiply(refreshed, x).y
        y_fresh = engine.multiply(fresh, x).y
        assert np.array_equal(y_refreshed, y_fresh)

    def test_structural_plan_reused_by_identity(self, engine):
        A = make_matrix(100)
        prep = engine.prepare(A, point=TuningPoint(block_height=2))
        refreshed = engine.update_values(prep, rescaled(A))
        assert refreshed.point is prep.point
        assert refreshed.tuning is prep.tuning
        assert refreshed.fmt.flags is prep.fmt.flags

    def test_accepts_raw_value_vector(self, engine):
        # A 1-D array is interpreted as the new data of the canonical
        # CSR (one value per stored non-zero, in CSR order).
        A = make_matrix(60)
        prep = engine.prepare(A, point=TuningPoint())
        csr = prep.reference_csr()
        new_data = csr.data * 2.0
        refreshed = engine.update_values(prep, new_data)
        x = np.ones(A.shape[1])
        np.testing.assert_allclose(
            engine.multiply(refreshed, x).y, 2.0 * (csr @ x),
            rtol=1e-12, atol=1e-14,
        )

    def test_wrong_value_vector_length_rejected(self, engine):
        A = make_matrix(60)
        prep = engine.prepare(A, point=TuningPoint())
        with pytest.raises(ValidationError, match="non-zero"):
            engine.update_values(prep, np.ones(A.nnz + 3))

    def test_not_a_prepared_matrix_rejected(self, engine):
        with pytest.raises(ValidationError, match="PreparedMatrix"):
            engine.update_values(make_matrix(10), make_matrix(10))


class TestFastPlanMigration:
    def test_plan_migrated_not_rebuilt(self):
        fast = get_backend("fast")
        engine = SpMVEngine("gtx680", backend="fast")
        A = make_matrix(100)
        prep = engine.prepare(A, point=TuningPoint())
        x = np.random.default_rng(4).standard_normal(A.shape[1])
        engine.multiply(prep, x)  # builds and caches the fast plan

        before = fast.n_value_refreshes
        refreshed = engine.update_values(prep, rescaled(A))
        assert fast.n_value_refreshes == before + 1

        y_refreshed = engine.multiply(refreshed, x).y
        y_faithful = (
            SpMVEngine("gtx680", backend="faithful")
            .multiply(refreshed, x).y
        )
        assert np.array_equal(y_refreshed, y_faithful)

    @pytest.mark.parametrize("backend", ["fast", "auto"])
    def test_refresh_matches_fresh_prepare(self, backend):
        engine = SpMVEngine("gtx680", backend=backend)
        A = make_matrix(100)
        B = rescaled(A)
        prep = engine.prepare(A, point=TuningPoint(block_height=2))
        x = np.random.default_rng(5).standard_normal(A.shape[1])
        engine.multiply(prep, x)
        refreshed = engine.update_values(prep, B)
        fresh = engine.prepare(B, point=TuningPoint(block_height=2))
        assert np.array_equal(
            engine.multiply(refreshed, x).y, engine.multiply(fresh, x).y
        )

    def test_cold_refresh_is_a_noop_migration(self):
        # No multiply ran, so there is no plan to migrate -- the refresh
        # must still produce a correct prepared matrix.
        engine = SpMVEngine("gtx680", backend="fast")
        A = make_matrix(60)
        prep = engine.prepare(A, point=TuningPoint())
        B = rescaled(A)
        refreshed = engine.update_values(prep, B)
        x = np.ones(A.shape[1])
        np.testing.assert_allclose(
            engine.multiply(refreshed, x).y, B @ x, rtol=1e-12, atol=1e-14
        )
