"""Engine-level failure containment: breaker, backoff, watchdog routing."""

import numpy as np
import pytest
from scipy import sparse

from repro.core import SpMVEngine
from repro.errors import ValidationError
from repro.fault import (
    BREAKER_CLOSED,
    BREAKER_OPEN,
    CircuitBreaker,
    FaultPlan,
    RetryPolicy,
)
from repro.obs import Observer


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture(scope="module")
def big():
    A = sparse.random(2000, 2000, density=0.01, random_state=3, format="csr")
    x = np.random.default_rng(7).standard_normal(2000)
    return A, x


class TestEngineBreaker:
    def test_persistent_failure_trips_circuit(self, big):
        A, x = big
        breaker = CircuitBreaker(1, 30.0, clock=FakeClock())
        eng = SpMVEngine(
            policy="permissive",
            fault_plan=FaultPlan.single("kernel.nan_partial", seed=2, count=None),
            breaker=breaker,
        )
        prepared = eng.prepare(A)
        family = prepared.point.format_name

        res = eng.multiply(prepared, x)
        np.testing.assert_allclose(res.y, A @ x, rtol=1e-9, atol=1e-12)
        assert breaker.state(family) == BREAKER_OPEN
        assert breaker.trips == 1

        # Open circuit: the next multiply skips the tuned stages outright
        # (recorded in the trail) and still produces a correct result.
        res2 = eng.multiply(prepared, x)
        np.testing.assert_allclose(res2.y, A @ x, rtol=1e-9, atol=1e-12)
        first = res2.failure.attempts[0]
        assert first.stage == "tuned"
        assert first.error_type == "CircuitOpenError"
        assert not any(a.stage == "tuned-retry" for a in res2.failure.attempts)

    def test_half_open_probe_closes_on_clean_run(self, big):
        A, x = big
        clock = FakeClock()
        breaker = CircuitBreaker(1, 30.0, clock=clock)
        eng = SpMVEngine(policy="permissive", breaker=breaker)  # no faults
        prepared = eng.prepare(A)
        family = prepared.point.format_name

        breaker.record_failure(family)  # trip it by hand
        res = eng.multiply(prepared, x)  # short-circuited, fallback wins
        assert res.failure.attempts[0].error_type == "CircuitOpenError"
        np.testing.assert_allclose(res.y, A @ x, rtol=1e-9, atol=1e-12)
        assert breaker.state(family) == BREAKER_OPEN

        clock.advance(30.0)  # cooldown over: one probe is allowed
        res2 = eng.multiply(prepared, x)
        assert res2.failure is None or res2.failure.fallback_used == "tuned"
        assert breaker.state(family) == BREAKER_CLOSED
        assert breaker.recoveries == 1

    def test_breaker_ignored_under_strict_policy(self, big):
        A, x = big
        breaker = CircuitBreaker(1, 30.0, clock=FakeClock())
        eng = SpMVEngine(breaker=breaker)  # strict (default)
        prepared = eng.prepare(A)
        breaker.record_failure(prepared.point.format_name)
        # Strict mode never consults the breaker -- the tuned path runs.
        res = eng.multiply(prepared, x)
        np.testing.assert_allclose(res.y, A @ x, rtol=1e-9, atol=1e-12)

    def test_type_validation(self):
        with pytest.raises(ValidationError):
            SpMVEngine(breaker="nope")
        with pytest.raises(ValidationError):
            SpMVEngine(retry_policy="nope")


class TestEngineRetryPolicy:
    def test_policy_governs_count_and_backoff(self, big):
        A, x = big
        slept = []
        policy = RetryPolicy(max_attempts=4, base_delay_s=1.0, jitter=0.0)
        eng = SpMVEngine(
            policy="permissive",
            fault_plan=FaultPlan.single("kernel.nan_partial", seed=2, count=2),
            retry_policy=policy,
            observer=(obs := Observer()),
        )
        eng._sleep = slept.append  # capture instead of sleeping
        prepared = eng.prepare(A)
        res = eng.multiply(prepared, x)
        np.testing.assert_allclose(res.y, A @ x, rtol=1e-9, atol=1e-12)
        # Budget 2: tuned + first retry fail, second retry succeeds.
        assert res.failure.fallback_used == "tuned-retry"
        assert obs.metrics.get("retry.attempts").value() == 2
        assert slept == [policy.delay_s(1), policy.delay_s(2)]


class TestWatchdogRouting:
    def test_dispatch_fault_trips_watchdog_and_recovers(self, big):
        A, x = big
        obs = Observer()
        eng = SpMVEngine(
            policy="permissive",
            fault_plan=FaultPlan.single(
                "dispatch.out_of_order", seed=7, count=1
            ),
            observer=obs,
        )
        prepared = eng.prepare(A)
        res = eng.multiply(prepared, x)
        np.testing.assert_allclose(res.y, A @ x, rtol=1e-9, atol=1e-12)
        # The out-of-order chain hit the spin cap (typed timeout, not a
        # silently wrong carry) and the bounded retry recovered it.
        assert obs.metrics.get("watchdog.timeouts").value() >= 1
        failed = [a for a in res.failure.attempts if not a.ok]
        assert any(a.error_type == "AdjacentSyncTimeout" for a in failed)

    def test_persistent_dispatch_reaches_logical_ids(self, big):
        A, x = big
        obs = Observer()
        eng = SpMVEngine(
            policy="permissive",
            fault_plan=FaultPlan.single(
                "dispatch.out_of_order", seed=7, count=None
            ),
            observer=obs,
        )
        prepared = eng.prepare(A)
        res = eng.multiply(prepared, x)
        np.testing.assert_allclose(res.y, A @ x, rtol=1e-9, atol=1e-12)
        # Every tuned attempt timed out; the paper's logical-id repair
        # absorbed the disorder.
        assert res.failure.fallback_used == "logical-ids"
        assert obs.metrics.get("watchdog.timeouts").value() >= 2
