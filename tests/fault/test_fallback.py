"""End-to-end tests: engine resilience under every fault class."""

import numpy as np
import pytest
from scipy import sparse

from repro.core import SpMVEngine
from repro.errors import FaultInjectedError, ReproError, ValidationError
from repro.fault import FaultPlan, FaultSpec


@pytest.fixture(scope="module")
def big():
    """A matrix large enough for several workgroups under the default
    tuned configuration -- the sync/dispatch faults need neighbours."""
    A = sparse.random(2000, 2000, density=0.01, random_state=3, format="csr")
    x = np.random.default_rng(7).standard_normal(2000)
    return A, x


def permissive(plan, **kw):
    return SpMVEngine(policy="permissive", fault_plan=plan, **kw)


class TestPermissiveRecovery:
    """With any injected fault class, permissive mode still returns a
    correct y (via some fallback stage) and reports the trail."""

    @pytest.mark.parametrize(
        "site",
        [
            "kernel.nan_partial",
            "kernel.inf_partial",
            "format.bitflag_flip",
            "format.column_truncate",
            "dispatch.out_of_order",
        ],
    )
    def test_persistent_fault_recovered(self, big, site):
        A, x = big
        eng = permissive(FaultPlan.single(site, seed=2, count=None))
        res = eng.multiply(eng.prepare(A), x)
        np.testing.assert_allclose(res.y, A @ x, rtol=1e-9, atol=1e-12)
        assert res.failure is not None
        assert res.failure.fallback_used is not None
        assert any(ev.site == site for ev in res.failure.injected_events)

    def test_stale_grp_sum_recovered(self, big):
        A, x = big
        # The chosen stale workgroup's incoming carry can legitimately be
        # zero (its predecessor ends on a row stop), making the fault
        # harmless; scan a few seeds and require that a corrupting one
        # was detected and recovered.
        degraded = False
        for seed in range(1, 8):
            eng = permissive(
                FaultPlan.single("sync.stale_grp_sum", seed=seed, count=None)
            )
            res = eng.multiply(eng.prepare(A), x)
            np.testing.assert_allclose(res.y, A @ x, rtol=1e-9, atol=1e-12)
            if res.degraded:
                degraded = True
                break
        assert degraded, "no seed in range produced a corrupting stale read"

    def test_transient_fault_recovered_by_retry(self, big):
        A, x = big
        eng = permissive(FaultPlan.single("kernel.nan_partial", seed=1, count=1))
        res = eng.multiply(eng.prepare(A), x)
        np.testing.assert_allclose(res.y, A @ x, rtol=1e-9, atol=1e-12)
        assert res.failure.fallback_used == "tuned-retry"
        assert [a.stage for a in res.failure.attempts] == ["tuned", "tuned-retry"]

    def test_out_of_order_absorbed_by_logical_ids(self, big):
        A, x = big
        eng = permissive(
            FaultPlan.single("dispatch.out_of_order", seed=2, count=None)
        )
        res = eng.multiply(eng.prepare(A), x)
        assert res.failure.fallback_used in ("tuned", "logical-ids")
        if res.failure.fallback_used == "logical-ids":
            # The repair stage records the absorption event.
            last = res.failure.attempts[-1]
            assert any(
                dict(ev.detail).get("absorbed_by") == "logical_ids"
                for ev in last.injected
            )

    def test_persistent_nan_reaches_csr_reference(self, big):
        A, x = big
        eng = permissive(FaultPlan.single("kernel.nan_partial", seed=1, count=None))
        res = eng.multiply(eng.prepare(A), x)
        assert res.failure.fallback_used == "csr-reference"
        assert res.degraded
        stages = [a.stage for a in res.failure.attempts]
        assert stages == ["tuned", "tuned-retry", "untuned", "csr-reference"]
        assert all(not a.ok for a in res.failure.attempts[:-1])

    def test_composed_plan(self, big):
        A, x = big
        plan = FaultPlan(
            [
                FaultSpec("kernel.nan_partial", count=1),
                FaultSpec("format.column_truncate", count=1),
            ],
            seed=5,
        )
        eng = permissive(plan)
        res = eng.multiply(eng.prepare(A), x)
        np.testing.assert_allclose(res.y, A @ x, rtol=1e-9, atol=1e-12)
        sites = {ev.site for ev in res.failure.injected_events}
        assert sites == {"kernel.nan_partial", "format.column_truncate"}


class TestStrictPolicy:
    def test_strict_raises_fault_injected(self, big):
        A, x = big
        eng = SpMVEngine(
            policy="strict",
            fault_plan=FaultPlan.single("kernel.nan_partial", seed=1, count=None),
        )
        with pytest.raises(FaultInjectedError) as exc_info:
            eng.multiply(eng.prepare(A), x)
        assert exc_info.value.site == "kernel.nan_partial"
        assert exc_info.value.seed == 1

    def test_strict_is_default(self):
        assert SpMVEngine().policy == "strict"

    def test_bad_policy_rejected(self):
        with pytest.raises(ValidationError):
            SpMVEngine(policy="yolo")

    def test_bad_validate_rejected(self):
        with pytest.raises(ValidationError):
            SpMVEngine(validate="sometimes")


class TestCleanRunsUnaffected:
    def test_no_plan_results_bit_identical(self, big):
        A, x = big
        r0 = SpMVEngine().multiply(SpMVEngine().prepare(A), x)
        eng = SpMVEngine(validate=True, policy="permissive")
        r1 = eng.multiply(eng.prepare(A), x)
        assert np.array_equal(r0.y, r1.y)
        assert r1.failure.fallback_used == "tuned"
        assert not r1.degraded

    def test_default_engine_has_no_failure_report(self, random_matrix, rng):
        A = random_matrix()
        eng = SpMVEngine()
        res = eng.multiply(eng.prepare(A), rng.standard_normal(A.shape[1]))
        assert res.failure is None and not res.degraded

    def test_exhausted_budget_goes_quiet(self, big):
        A, x = big
        plan = FaultPlan.single("format.bitflag_flip", seed=2, count=1)
        eng = permissive(plan)
        prepared = eng.prepare(A)
        first = eng.multiply(prepared, x)
        assert first.degraded or first.failure.fallback_used == "tuned-retry"
        second = eng.multiply(prepared, x)  # budget spent in run one
        assert second.failure.fallback_used == "tuned"
        np.testing.assert_allclose(second.y, A @ x, rtol=1e-9, atol=1e-12)


class TestTunerQuarantine:
    def test_skip_reasons_taxonomy(self, random_matrix):
        from repro.gpu import get_device
        from repro.tuning import AutoTuner
        from repro.tuning.cache import FormatCache

        A = random_matrix()
        tuner = AutoTuner(get_device("gtx680"))
        fails = {"n": 0}
        original = FormatCache.get

        def flaky(self, point):
            if point.slice_count > 1:
                fails["n"] += 1
                raise ReproError("synthetic per-candidate failure")
            return original(self, point)

        FormatCache.get = flaky
        try:
            result = tuner.tune(A)
        finally:
            FormatCache.get = original
        if fails["n"]:
            assert result.skipped >= fails["n"]
            assert result.skip_reasons.get("ReproError") == fails["n"]
        assert sum(result.skip_reasons.values()) == result.skipped

    def test_non_repro_errors_propagate(self, random_matrix):
        from repro.gpu import get_device
        from repro.tuning import AutoTuner
        from repro.tuning.cache import FormatCache

        A = random_matrix()
        original = FormatCache.get

        def buggy(self, point):
            raise TypeError("a genuine bug")

        FormatCache.get = buggy
        try:
            with pytest.raises(TypeError):
                AutoTuner(get_device("gtx680")).tune(A)
        finally:
            FormatCache.get = original
