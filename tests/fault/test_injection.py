"""Tests for the seeded fault-injection harness."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.fault import (
    FAULT_SITES,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    active_plan,
    fault_scope,
    resolve_site,
)


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec("sync.nonexistent")

    def test_bad_probability_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec("kernel.nan_partial", probability=1.5)

    def test_bad_count_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec("kernel.nan_partial", count=0)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec("format.column_truncate", fraction=0.0)

    def test_duplicate_site_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan(
                [FaultSpec("kernel.nan_partial"), FaultSpec("kernel.nan_partial")]
            )


class TestDeterminism:
    def test_same_seed_same_perturbation(self, rng):
        contribs = rng.standard_normal((32, 2))
        p1 = FaultPlan.single("kernel.nan_partial", seed=9, count=None)
        p2 = FaultPlan.single("kernel.nan_partial", seed=9, count=None)
        np.testing.assert_array_equal(
            p1.perturb_partials(contribs), p2.perturb_partials(contribs)
        )

    def test_reset_replays(self, rng):
        contribs = rng.standard_normal((32, 2))
        plan = FaultPlan.single("kernel.inf_partial", seed=4, count=None)
        first = plan.perturb_partials(contribs)
        plan.reset()
        np.testing.assert_array_equal(first, plan.perturb_partials(contribs))

    def test_sites_draw_independently(self):
        # Adding a second site must not shift the first site's draws.
        solo = FaultPlan.single("format.bitflag_flip", seed=3, count=None)
        combo = FaultPlan(
            [
                FaultSpec("format.bitflag_flip", count=None),
                FaultSpec("kernel.nan_partial", count=None),
            ],
            seed=3,
        )
        stops = np.zeros(64, dtype=bool)
        np.testing.assert_array_equal(
            solo.perturb_stops(stops, n_valid=64),
            combo.perturb_stops(stops, n_valid=64),
        )


class TestBudget:
    def test_transient_fires_once(self):
        plan = FaultPlan.single("format.bitflag_flip", count=1)
        stops = np.zeros(16, dtype=bool)
        first = plan.perturb_stops(stops, n_valid=16)
        assert first.sum() == 1  # one bit flipped
        second = plan.perturb_stops(stops, n_valid=16)
        assert second is stops  # budget spent: untouched passthrough

    def test_persistent_keeps_firing(self):
        plan = FaultPlan.single("format.bitflag_flip", count=None)
        stops = np.zeros(16, dtype=bool)
        for _ in range(5):
            assert plan.perturb_stops(stops, n_valid=16).sum() == 1

    def test_probability_zero_never_fires(self):
        plan = FaultPlan.single("kernel.nan_partial", probability=0.0, count=None)
        contribs = np.ones((8, 1))
        assert plan.perturb_partials(contribs) is contribs


class TestSiteHooks:
    def test_partials_copy_on_write(self, rng):
        contribs = rng.standard_normal((20, 3))
        keep = contribs.copy()
        plan = FaultPlan.single("kernel.nan_partial", fraction=0.5)
        out = plan.perturb_partials(contribs)
        np.testing.assert_array_equal(contribs, keep)  # input untouched
        assert np.isnan(out).any()
        assert np.isnan(out.sum(axis=1)).sum() == 10  # fraction honoured

    def test_inf_partials(self, rng):
        plan = FaultPlan.single("kernel.inf_partial", fraction=0.25)
        out = plan.perturb_partials(rng.standard_normal((16, 2)))
        assert np.isinf(out).any() and not np.isnan(out).any()

    def test_stops_flip_changes_count_by_one(self):
        stops = np.zeros(32, dtype=bool)
        stops[[7, 15, 31]] = True
        plan = FaultPlan.single("format.bitflag_flip")
        out = plan.perturb_stops(stops, n_valid=32)
        assert abs(int(out.sum()) - 3) == 1

    def test_columns_truncated_to_last_value(self):
        cols = np.arange(40, dtype=np.int64)
        plan = FaultPlan.single("format.column_truncate", fraction=0.25)
        out = plan.perturb_columns(cols, n_valid=40)
        np.testing.assert_array_equal(out[:30], cols[:30])
        np.testing.assert_array_equal(out[30:40], 29)

    def test_dispatch_order_is_nonidentity_permutation(self):
        plan = FaultPlan.single("dispatch.out_of_order", count=None)
        order = plan.dispatch_order(8)
        assert sorted(order.tolist()) == list(range(8))
        assert not np.array_equal(order, np.arange(8))

    def test_dispatch_single_workgroup_is_noop(self):
        plan = FaultPlan.single("dispatch.out_of_order")
        assert plan.dispatch_order(1) is None

    def test_stale_mask_spares_workgroup_zero(self):
        plan = FaultPlan.single("sync.stale_grp_sum", count=None)
        for _ in range(10):
            mask = plan.stale_mask(6)
            assert mask.sum() == 1 and not mask[0]

    def test_events_record_and_drain(self):
        plan = FaultPlan.single("sync.stale_grp_sum")
        plan.stale_mask(4)
        events = plan.drain_events()
        assert len(events) == 1
        assert isinstance(events[0], FaultEvent)
        assert events[0].site == "sync.stale_grp_sum"
        assert plan.drain_events() == []

    def test_targets_prefix(self):
        plan = FaultPlan.single("sync.stale_grp_sum")
        assert plan.targets("sync.")
        assert not plan.targets("dispatch.")


class TestScope:
    def test_scope_installs_and_restores(self):
        plan = FaultPlan.single("kernel.nan_partial")
        assert active_plan() is None
        with fault_scope(plan):
            assert active_plan() is plan
            with fault_scope(None):  # nested no-op scope
                assert active_plan() is None
            assert active_plan() is plan
        assert active_plan() is None

    def test_scope_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with fault_scope(FaultPlan.single("kernel.nan_partial")):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_all_sites_constructible(self):
        for site in FAULT_SITES:
            FaultPlan.single(site)


class TestResolveSite:
    def test_full_name_passes_through(self):
        assert resolve_site("sync.stale_grp_sum") == "sync.stale_grp_sum"

    def test_unambiguous_suffix(self):
        assert resolve_site("stale_grp_sum") == "sync.stale_grp_sum"
        assert resolve_site("out_of_order") == "dispatch.out_of_order"

    def test_unknown_rejected(self):
        with pytest.raises(ReproError, match="unknown fault site"):
            resolve_site("not_a_site")


class TestSpecStringParse:
    def test_single_entry_with_options(self):
        plan = FaultPlan.parse("stale_grp_sum:p=0.01,seed=7")
        assert plan.seed == 7
        spec = plan.specs["sync.stale_grp_sum"]
        assert spec.probability == 0.01
        assert spec.count == 1  # FaultSpec default

    def test_multiple_entries(self):
        plan = FaultPlan.parse("nan_partial:count=2;bitflag_flip:count=inf,f=0.5")
        assert set(plan.specs) == {"kernel.nan_partial", "format.bitflag_flip"}
        assert plan.specs["kernel.nan_partial"].count == 2
        assert plan.specs["format.bitflag_flip"].count is None
        assert plan.specs["format.bitflag_flip"].fraction == 0.5

    def test_option_aliases(self):
        plan = FaultPlan.parse("nan_partial:probability=0.5,fraction=0.1")
        spec = plan.specs["kernel.nan_partial"]
        assert spec.probability == 0.5
        assert spec.fraction == 0.1

    def test_explicit_seed_overrides_option(self):
        assert FaultPlan.parse("nan_partial:seed=7", seed=3).seed == 3

    def test_whitespace_tolerated(self):
        plan = FaultPlan.parse(" nan_partial : p = 1.0 ; stale_grp_sum ")
        assert set(plan.specs) == {"kernel.nan_partial", "sync.stale_grp_sum"}

    def test_malformed_rejected(self):
        with pytest.raises(ReproError, match="malformed fault option"):
            FaultPlan.parse("nan_partial:p")
        with pytest.raises(ReproError, match="empty fault spec"):
            FaultPlan.parse("   ")
        with pytest.raises(ReproError):
            FaultPlan.parse("nan_partial:bogus=1")

    def test_parse_replays_deterministically(self):
        spec = "nan_partial:p=0.5,count=inf,seed=11"
        a, b = FaultPlan.parse(spec), FaultPlan.parse(spec)
        contribs = np.ones((16, 2))
        for _ in range(5):
            np.testing.assert_array_equal(
                a.perturb_partials(contribs), b.perturb_partials(contribs)
            )


class TestCoerce:
    def test_plan_and_none_pass_through(self):
        plan = FaultPlan.single("kernel.nan_partial")
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce(None) is None

    def test_string_parsed(self):
        plan = FaultPlan.coerce("nan_partial:p=0.25")
        assert isinstance(plan, FaultPlan)
        assert plan.specs["kernel.nan_partial"].probability == 0.25

    def test_other_types_rejected(self):
        with pytest.raises(ReproError, match="fault_plan"):
            FaultPlan.coerce(42)
