"""Tests for the failure-containment policies (retry/deadline/breaker)."""

import math

import pytest

from repro.errors import CircuitOpenError, DeadlineExceeded, ReproError
from repro.fault import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestRetryPolicy:
    def test_backoff_schedule(self):
        p = RetryPolicy(
            max_attempts=4, base_delay_s=1.0, multiplier=2.0, jitter=0.0
        )
        assert p.retries == 3
        assert p.delays() == [1.0, 2.0, 4.0]

    def test_max_delay_caps(self):
        p = RetryPolicy(
            max_attempts=6, base_delay_s=1.0, multiplier=10.0,
            max_delay_s=5.0, jitter=0.0,
        )
        assert p.delays() == [1.0, 5.0, 5.0, 5.0, 5.0]

    def test_jitter_is_deterministic_and_bounded(self):
        p = RetryPolicy(max_attempts=5, base_delay_s=1.0, jitter=0.25, seed=3)
        q = RetryPolicy(max_attempts=5, base_delay_s=1.0, jitter=0.25, seed=3)
        assert p.delays() == q.delays()  # same seed -> same schedule
        for k, delay in enumerate(p.delays(), start=1):
            raw = min(1.0 * 2.0 ** (k - 1), 30.0)
            assert raw * 0.75 <= delay <= raw * 1.25

    def test_different_seeds_decorrelate(self):
        a = RetryPolicy(max_attempts=4, base_delay_s=1.0, jitter=0.25, seed=1)
        b = RetryPolicy(max_attempts=4, base_delay_s=1.0, jitter=0.25, seed=2)
        assert a.delays() != b.delays()

    def test_zero_base_never_sleeps(self):
        p = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        assert p.delays() == [0.0] * 4

    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay_s=-1.0)

    def test_call_retries_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ReproError("transient")
            return "ok"

        slept = []
        p = RetryPolicy(max_attempts=3, base_delay_s=1.0, jitter=0.0)
        assert p.call(flaky, sleep=slept.append) == "ok"
        assert len(attempts) == 3
        assert slept == [1.0, 2.0]

    def test_call_exhausts_and_reraises(self):
        p = RetryPolicy(max_attempts=2, base_delay_s=0.0)
        calls = []

        def always():
            calls.append(1)
            raise ReproError("persistent")

        with pytest.raises(ReproError, match="persistent"):
            p.call(always)
        assert len(calls) == 2

    def test_call_on_retry_hook(self):
        seen = []
        p = RetryPolicy(max_attempts=3, base_delay_s=0.0)

        def flaky():
            if len(seen) < 2:
                raise ReproError("x")
            return 1

        p.call(flaky, on_retry=lambda k, exc: seen.append((k, type(exc))))
        assert seen == [(1, ReproError), (2, ReproError)]

    def test_call_does_not_catch_foreign_exceptions(self):
        p = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        with pytest.raises(KeyError):
            p.call(lambda: (_ for _ in ()).throw(KeyError("bug")))

    def test_call_respects_deadline_instead_of_sleeping_past_it(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        p = RetryPolicy(max_attempts=3, base_delay_s=100.0, jitter=0.0)
        with pytest.raises(DeadlineExceeded):
            p.call(
                lambda: (_ for _ in ()).throw(ReproError("x")),
                deadline=deadline,
                sleep=lambda s: None,
            )


class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline(None)
        assert d.remaining() == math.inf
        assert not d.expired()
        d.check("anything")  # no raise

    def test_expiry_with_fake_clock(self):
        clock = FakeClock()
        d = Deadline(5.0, clock=clock)
        assert d.remaining() == 5.0
        clock.advance(4.0)
        assert not d.expired()
        clock.advance(1.5)
        assert d.expired()
        with pytest.raises(DeadlineExceeded) as exc:
            d.check("tuning")
        assert exc.value.budget_s == 5.0
        assert exc.value.label == "tuning"

    def test_coerce(self):
        d = Deadline(1.0)
        assert Deadline.coerce(d) is d
        assert Deadline.coerce(None) is None
        assert Deadline.coerce(2.5).seconds == 2.5
        with pytest.raises(ReproError):
            Deadline.coerce("soon")

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            Deadline(-1.0)


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        clock = FakeClock()
        return CircuitBreaker(threshold, cooldown, clock=clock), clock

    def test_closed_until_threshold(self):
        br, _ = self.make(threshold=3)
        for _ in range(2):
            br.record_failure("bccoo")
        assert br.state("bccoo") == BREAKER_CLOSED
        assert br.allow("bccoo")
        br.record_failure("bccoo")
        assert br.state("bccoo") == BREAKER_OPEN
        assert not br.allow("bccoo")
        assert br.trips == 1

    def test_success_resets_consecutive_count(self):
        br, _ = self.make(threshold=2)
        br.record_failure("k")
        br.record_success("k")
        br.record_failure("k")
        assert br.state("k") == BREAKER_CLOSED  # never 2 in a row

    def test_half_open_probe_success_closes(self):
        br, clock = self.make(threshold=1, cooldown=10.0)
        br.record_failure("k")
        assert br.state("k") == BREAKER_OPEN
        clock.advance(10.0)
        assert br.state("k") == BREAKER_HALF_OPEN
        assert br.allow("k")  # the probe slot
        assert br.probes == 1
        br.record_success("k")
        assert br.state("k") == BREAKER_CLOSED
        assert br.recoveries == 1

    def test_half_open_probe_failure_reopens(self):
        br, clock = self.make(threshold=1, cooldown=10.0)
        br.record_failure("k")
        clock.advance(10.0)
        assert br.allow("k")
        br.record_failure("k")
        assert br.state("k") == BREAKER_OPEN
        assert not br.allow("k")
        assert br.trips == 2
        clock.advance(9.9)  # cooldown restarted at the re-open
        assert br.state("k") == BREAKER_OPEN

    def test_keys_are_independent(self):
        br, _ = self.make(threshold=1)
        br.record_failure("a")
        assert not br.allow("a")
        assert br.allow("b")
        assert br.snapshot() == {"a": BREAKER_OPEN, "b": BREAKER_CLOSED}

    def test_check_raises_typed_error(self):
        br, _ = self.make(threshold=1)
        br.record_failure("bell")
        with pytest.raises(CircuitOpenError) as exc:
            br.check("bell")
        assert exc.value.family == "bell"

    def test_state_value_encoding(self):
        br, clock = self.make(threshold=1, cooldown=5.0)
        assert br.state_value("k") == 0
        br.record_failure("k")
        assert br.state_value("k") == 2
        clock.advance(5.0)
        assert br.state_value("k") == 1

    def test_validation(self):
        with pytest.raises(ReproError):
            CircuitBreaker(0)
        with pytest.raises(ReproError):
            CircuitBreaker(1, -1.0)


class TestHalfOpenProbeSlot:
    """Half-open must admit exactly ONE probe, also under concurrency."""

    def make_half_open(self, cooldown=10.0):
        clock = FakeClock()
        br = CircuitBreaker(1, cooldown, clock=clock)
        br.record_failure("k")
        clock.advance(cooldown)
        assert br.state("k") == BREAKER_HALF_OPEN
        return br, clock

    def test_second_caller_refused_while_probe_in_flight(self):
        br, _ = self.make_half_open()
        assert br.allow("k") is True  # probe slot claimed
        assert br.allow("k") is False  # racer refused
        assert br.allow("k") is False
        assert br.probes == 1
        br.record_success("k")
        assert br.state("k") == BREAKER_CLOSED
        assert br.allow("k") is True  # closed again: attempts flow

    def test_concurrent_probes_admit_exactly_one(self):
        import threading

        br, _ = self.make_half_open()
        n = 8
        barrier = threading.Barrier(n)
        admitted = []

        def racer():
            barrier.wait()
            if br.allow("k"):
                admitted.append(True)

        threads = [threading.Thread(target=racer) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == 1
        assert br.probes == 1

    def test_failed_probe_releases_slot_via_reopen(self):
        br, clock = self.make_half_open(cooldown=10.0)
        assert br.allow("k")
        br.record_failure("k")
        assert br.state("k") == BREAKER_OPEN
        clock.advance(10.0)
        # A fresh half-open period grants a fresh probe slot.
        assert br.allow("k") is True
        assert br.probes == 2

    def test_stale_probe_slot_released_after_cooldown(self):
        # A probe whose caller never reports back (e.g. it died on a
        # non-ReproError) must not wedge the circuit in half-open.
        br, clock = self.make_half_open(cooldown=10.0)
        assert br.allow("k") is True
        assert br.allow("k") is False  # slot held, no report yet
        clock.advance(10.0)
        assert br.allow("k") is True  # slot reclaimed after one cooldown
        assert br.probes == 2

    def test_trip_forces_open(self):
        clock = FakeClock()
        br = CircuitBreaker(5, 10.0, clock=clock)
        assert br.state("k") == BREAKER_CLOSED
        br.trip("k")  # no failures recorded; health-driven ejection
        assert br.state("k") == BREAKER_OPEN
        assert not br.allow("k")
        assert br.trips == 1
        clock.advance(10.0)
        assert br.state("k") == BREAKER_HALF_OPEN
        assert br.allow("k")
        br.record_success("k")
        assert br.state("k") == BREAKER_CLOSED
        assert br.recoveries == 1

    def test_trip_is_idempotent_and_does_not_restart_cooldown(self):
        clock = FakeClock()
        br = CircuitBreaker(5, 10.0, clock=clock)
        br.trip("k")
        clock.advance(6.0)
        br.trip("k")  # flapping health signal re-trips mid-cooldown
        assert br.trips == 1
        clock.advance(4.0)  # 10s since the FIRST trip
        # If the second trip had restarted the cooldown this would
        # still be open -- the probe must not be postponable forever.
        assert br.state("k") == BREAKER_HALF_OPEN
