"""Tests for format invariant checking and output verification."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.fault import ValidationReport, validate_format, verify_output
from repro.formats.bccoo import BCCOOMatrix
from repro.formats.bccoo_plus import BCCOOPlusMatrix


class TestValidationReport:
    def test_empty_report_is_ok(self):
        assert ValidationReport(subject="x").ok

    def test_failures_and_summary(self):
        rep = ValidationReport(subject="s")
        rep.add("a", True)
        rep.add("b", False, "broken")
        assert not rep.ok
        assert [c.name for c in rep.failures] == ["b"]
        assert "FAIL" in rep.summary() and "broken" in rep.summary()

    def test_raise_if_failed_carries_context(self):
        rep = ValidationReport(subject="s")
        rep.add("some_check", False, "why")
        with pytest.raises(ValidationError) as exc_info:
            rep.raise_if_failed()
        assert exc_info.value.check == "some_check"
        assert exc_info.value.detail == "why"

    def test_merge(self):
        a = ValidationReport(subject="a")
        a.add("x", True)
        b = ValidationReport(subject="b")
        b.add("y", False)
        a.merge(b)
        assert len(a.checks) == 2 and not a.ok


class TestValidateFormat:
    def test_clean_bccoo_passes(self, random_matrix):
        fmt = BCCOOMatrix.from_scipy(random_matrix())
        report = fmt.validate()
        assert report.ok, report.summary()
        names = {c.name for c in report.checks}
        assert "row_stop_count" in names and "values_finite" in names

    def test_clean_bccoo_plus_passes(self, random_matrix):
        fmt = BCCOOPlusMatrix.from_scipy(
            random_matrix(ncols=128), slice_count=2
        )
        report = fmt.validate()
        assert report.ok, report.summary()
        names = {c.name for c in report.checks}
        assert "slice_cover" in names and "stacked_rows_consistent" in names

    def test_empty_rows_and_paper_matrix(self, paper_matrix_a, empty_row_matrix):
        for m in (paper_matrix_a, empty_row_matrix):
            assert validate_format(BCCOOMatrix.from_scipy(m)).ok

    def test_corrupt_values_detected(self, random_matrix):
        fmt = BCCOOMatrix.from_scipy(random_matrix())
        fmt.values[0, 0, 0] = np.nan
        report = fmt.validate()
        assert not report.ok
        assert report.failures[0].name == "values_finite"

    def test_unknown_format_gets_shape_check_only(self, paper_matrix_a):
        from repro.formats.csr import CSRMatrix

        report = validate_format(CSRMatrix.from_scipy(paper_matrix_a))
        assert report.ok and report.checks[0].name == "has_shape"


class TestVerifyOutput:
    def test_correct_output_passes(self, random_matrix, rng):
        A = random_matrix()
        x = rng.standard_normal(A.shape[1])
        assert verify_output(A, x, A @ x, n_samples=None).ok

    def test_length_mismatch(self, random_matrix, rng):
        A = random_matrix()
        x = rng.standard_normal(A.shape[1])
        report = verify_output(A, x, np.zeros(A.shape[0] + 1))
        assert not report.ok
        assert report.failures[0].name == "output_length"

    def test_nan_detected(self, random_matrix, rng):
        A = random_matrix()
        x = rng.standard_normal(A.shape[1])
        y = A @ x
        y[3] = np.nan
        report = verify_output(A, x, y, n_samples=None)
        assert "output_finite" in {c.name for c in report.failures}

    def test_checksum_catches_unsampled_corruption(self, rng):
        # Corrupt one row of a big matrix but sample few others: the
        # row-sampling check can miss it; the global checksum cannot.
        from scipy import sparse

        A = sparse.random(3000, 3000, density=0.01, random_state=1, format="csr")
        x = rng.standard_normal(3000)
        y = A @ x
        y[1234] += 5.0
        report = verify_output(A, x, y, n_samples=4, seed=0)
        assert "checksum" in {c.name for c in report.failures}

    def test_sampling_is_deterministic(self, random_matrix, rng):
        A = random_matrix(nrows=200)
        x = rng.standard_normal(A.shape[1])
        y = np.asarray(A @ x)
        y += rng.standard_normal(y.shape) * 1e-3  # everything slightly off
        r1 = verify_output(A, x, y, n_samples=16, seed=5)
        r2 = verify_output(A, x, y, n_samples=16, seed=5)
        assert [c.detail for c in r1.checks] == [c.detail for c in r2.checks]

    def test_tolerance_respected(self, random_matrix, rng):
        A = random_matrix()
        x = rng.standard_normal(A.shape[1])
        y = np.asarray(A @ x) * (1.0 + 1e-12)
        assert verify_output(A, x, y, n_samples=None, rtol=1e-9).ok
        assert not verify_output(
            A, x, np.asarray(A @ x) * 1.01, n_samples=None, rtol=1e-9
        ).ok
