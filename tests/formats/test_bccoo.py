"""Tests for the BCCOO format (the paper's section 2.2)."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import FormatError
from repro.formats import BCCOOMatrix, COOMatrix


class TestPaperFigure3:
    """Matrix A with 2x2 blocks must reproduce Figure 3 exactly."""

    @pytest.fixture
    def fmt(self, paper_matrix_a):
        return BCCOOMatrix.from_scipy(
            paper_matrix_a, block_height=2, block_width=2, bit_word_dtype=np.uint8
        )

    def test_bit_flags(self, fmt):
        flags = (~fmt.stops()[: fmt.nblocks]).astype(int)
        assert flags.tolist() == [1, 0, 1, 1, 0]

    def test_col_index(self, fmt):
        assert fmt.columns()[: fmt.nblocks].tolist() == [1, 3, 0, 2, 3]

    def test_value_rows_separable(self, fmt):
        # Figure 2/3 store intra-block rows in separate arrays; our
        # (nb, h, w) layout slices to exactly those arrays.
        top = fmt.values[: fmt.nblocks, 0, :].ravel()
        bottom = fmt.values[: fmt.nblocks, 1, :].ravel()
        assert top.tolist() == [1, 0, 2, 3, 0, 0, 7, 8, 9, 10]
        assert bottom.tolist() == [4, 5, 6, 0, 11, 12, 13, 14, 15, 16]

    def test_block_rows_reconstruct(self, fmt):
        assert fmt.block_rows().tolist() == [0, 0, 1, 1, 1]


class TestRoundTrip:
    @pytest.mark.parametrize("h", [1, 2, 3, 4])
    @pytest.mark.parametrize("w", [1, 2, 4])
    def test_all_block_sizes(self, h, w, random_matrix):
        A = random_matrix(nrows=37, ncols=53, density=0.1)
        fmt = BCCOOMatrix.from_scipy(A, block_height=h, block_width=w)
        assert (fmt.to_scipy() != A).nnz == 0

    @pytest.mark.parametrize("word", [np.uint8, np.uint16, np.uint32])
    def test_all_word_types(self, word, random_matrix):
        A = random_matrix()
        fmt = BCCOOMatrix.from_scipy(A, bit_word_dtype=word)
        assert (fmt.to_scipy() != A).nnz == 0

    @pytest.mark.parametrize("storage", ["int32", "ushort", "delta"])
    def test_all_col_storages(self, storage, random_matrix, rng):
        A = random_matrix(nrows=64, ncols=64, density=0.1)
        fmt = BCCOOMatrix.from_scipy(A, col_storage=storage, delta_tile_size=8)
        assert fmt.col_storage == storage
        assert (fmt.to_scipy() != A).nnz == 0
        x = rng.standard_normal(64)
        np.testing.assert_allclose(fmt.multiply(x), A @ x, atol=1e-10)

    def test_empty_block_rows(self, empty_row_matrix, rng):
        fmt = BCCOOMatrix.from_scipy(empty_row_matrix, block_height=2, block_width=2)
        assert fmt.has_empty_block_rows
        assert (fmt.to_scipy() != empty_row_matrix).nnz == 0
        x = rng.standard_normal(20)
        np.testing.assert_allclose(fmt.multiply(x), empty_row_matrix @ x)

    def test_pad_multiple(self, random_matrix):
        A = random_matrix()
        fmt = BCCOOMatrix.from_scipy(A, pad_multiple=64)
        assert fmt.nblocks_padded % 64 == 0
        assert (fmt.to_scipy() != A).nnz == 0

    def test_single_element(self):
        A = sparse.csr_matrix((np.array([3.0]), (np.array([2]), np.array([5]))), shape=(9, 9))
        fmt = BCCOOMatrix.from_scipy(A, block_height=2, block_width=2)
        assert fmt.nblocks == 1
        assert (fmt.to_scipy() != A).nnz == 0


class TestColumnStorageSelection:
    def test_auto_narrow_is_ushort(self, random_matrix):
        fmt = BCCOOMatrix.from_scipy(random_matrix(ncols=100))
        assert fmt.col_storage == "ushort"

    def test_auto_wide_compressible_is_delta(self):
        # Contiguous column runs: deltas are tiny, so the cost-based
        # auto decision keeps the 16-bit representation.
        nrows, run = 300, 100
        rows = np.repeat(np.arange(nrows), run)
        cols = (np.arange(nrows * run) % run) + 1000 * np.repeat(
            np.arange(nrows), run
        )
        A = sparse.csr_matrix(
            (np.ones(rows.size), (rows, cols)), shape=(nrows, 300_000)
        )
        fmt = BCCOOMatrix.from_scipy(A, block_width=1)
        assert fmt.col_storage == "delta"

    def test_auto_wide_scattered_is_int32(self):
        # Column gaps far beyond int16 on nearly every entry: delta
        # would fall back too often to pay off, so auto declines the
        # compression (the Table 1 "Col_index compress: No" decision).
        rng = np.random.default_rng(0)
        rows = np.repeat(np.arange(100), 10)
        cols = rng.choice(5_000_000, size=1000, replace=False)
        A = sparse.csr_matrix(
            (np.ones(1000), (rows, np.sort(cols.reshape(100, 10), axis=1).ravel())),
            shape=(100, 5_000_000),
        )
        fmt = BCCOOMatrix.from_scipy(A, block_width=1, delta_tile_size=16)
        assert fmt.col_storage == "int32"

    def test_auto_wide_dense_rows_is_delta(self):
        A = sparse.random(50, 300_000, density=0.0005, random_state=0, format="csr")
        fmt = BCCOOMatrix.from_scipy(A, block_width=1, delta_tile_size=16)
        assert fmt.col_storage == "delta"

    def test_ushort_rejected_when_wide(self):
        A = sparse.random(50, 300_000, density=0.0005, random_state=0, format="csr")
        with pytest.raises(FormatError, match="ushort"):
            BCCOOMatrix.from_scipy(A, col_storage="ushort")

    def test_blocking_widens_ushort_reach(self):
        # 100k columns exceed ushort at width 1... no: 100k > 65535, but
        # with block width 4 there are only 25k block columns.
        A = sparse.random(50, 100_000, density=0.001, random_state=0, format="csr")
        fmt = BCCOOMatrix.from_scipy(A, block_width=4, col_storage="auto")
        assert fmt.col_storage == "ushort"

    def test_invalid_mode(self, random_matrix):
        with pytest.raises(FormatError, match="col_storage"):
            BCCOOMatrix.from_scipy(random_matrix(), col_storage="zip")


class TestFootprint:
    def test_smaller_than_coo(self, random_matrix):
        A = random_matrix(nrows=200, ncols=200, density=0.05)
        bccoo = BCCOOMatrix.from_scipy(A).footprint_bytes()
        coo = COOMatrix.from_scipy(A).footprint_bytes()
        assert bccoo < coo

    def test_bit_flags_tiny(self, random_matrix):
        A = random_matrix(nrows=200, ncols=200, density=0.05)
        fp = BCCOOMatrix.from_scipy(A, bit_word_dtype=np.uint8).footprint()
        # One bit per block vs 32 bits: flags must be < 4% of a COO row array.
        assert fp.arrays["bit_flags"] * 25 < A.nnz * 4

    def test_dense_matches_table3_math(self):
        # Table 3: Dense (2K x 2K, 4M nnz) = 17 MB with 4x4 blocks.  At
        # 1/10 linear scale the same arithmetic gives values+cols+flags.
        n = 200
        A = sparse.csr_matrix(np.ones((n, n)))
        fmt = BCCOOMatrix.from_scipy(A, block_height=4, block_width=4)
        fp = fmt.footprint()
        nb = (n // 4) ** 2
        assert fmt.nblocks == nb
        # Padding to whole bit-flag words adds <2% at this size.
        assert fp.arrays["values"] == fmt.nblocks_padded * 16 * 4
        assert fp.arrays["values"] <= nb * 16 * 4 * 1.02
        assert fp.arrays["col_index"] == fmt.nblocks_padded * 2

    def test_aux_info_optional(self, random_matrix):
        A = random_matrix()
        fmt = BCCOOMatrix.from_scipy(A, pad_multiple=16)
        base = fmt.footprint()
        with_aux = fmt.footprint(tile_size=16)
        assert with_aux.total > base.total
        assert "first_result_entry" in with_aux.arrays

    def test_row_map_charged_only_when_gaps(self, empty_row_matrix, random_matrix):
        gappy = BCCOOMatrix.from_scipy(empty_row_matrix).footprint()
        assert "row_map" in gappy.arrays
        full = BCCOOMatrix.from_scipy(random_matrix(density=0.5)).footprint()
        assert "row_map" not in full.arrays


class TestAuxiliary:
    def test_tile_has_stop(self, random_matrix):
        A = random_matrix()
        fmt = BCCOOMatrix.from_scipy(A, pad_multiple=8)
        aux = fmt.auxiliary(8)
        stops = fmt.stops().reshape(-1, 8)
        np.testing.assert_array_equal(aux["tile_has_stop"], stops.any(axis=1))

    def test_indivisible_tile_rejected(self, random_matrix):
        fmt = BCCOOMatrix.from_scipy(random_matrix(), pad_multiple=8)
        with pytest.raises(FormatError, match="does not divide"):
            fmt.auxiliary(7)


class TestValidation:
    def test_tampered_row_map_detected(self, random_matrix):
        fmt = BCCOOMatrix.from_scipy(random_matrix())
        with pytest.raises(FormatError, match="row stops"):
            BCCOOMatrix(
                fmt.shape,
                fmt.block_height,
                fmt.block_width,
                fmt.flags,
                fmt.col_block,
                fmt.values,
                fmt.nonempty_block_rows[:-1],  # one entry short
                fmt.col_storage,
                fmt.delta,
                fmt.nnz,
            )

    def test_wrong_values_shape_detected(self, random_matrix):
        fmt = BCCOOMatrix.from_scipy(random_matrix())
        with pytest.raises(FormatError, match="values shape"):
            BCCOOMatrix(
                fmt.shape,
                fmt.block_height + 1,
                fmt.block_width,
                fmt.flags,
                fmt.col_block,
                fmt.values,
                fmt.nonempty_block_rows,
                fmt.col_storage,
                fmt.delta,
                fmt.nnz,
            )
