"""Tests for BCCOO+ (vertical slicing, paper section 2.3)."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import FormatError
from repro.formats import BCCOOMatrix, BCCOOPlusMatrix


class TestPaperFigure4:
    """Matrix A, 2 slices, 2x2 blocks must reproduce Figure 4 exactly."""

    @pytest.fixture
    def fmt(self, paper_matrix_a):
        return BCCOOPlusMatrix.from_scipy(
            paper_matrix_a, slice_count=2, block_height=2, block_width=2
        )

    def test_bit_flags(self, fmt):
        flags = (~fmt.stacked.stops()[: fmt.nblocks]).astype(int)
        assert flags.tolist() == [0, 0, 0, 1, 0]

    def test_col_index_in_original_coordinates(self, fmt):
        # Figure 4b: [1, 0, 3, 2, 3] -- block columns of matrix A, not B.
        assert fmt.stacked.columns()[: fmt.nblocks].tolist() == [1, 0, 3, 2, 3]

    def test_slice_width(self, fmt):
        assert fmt.slice_width == 4
        assert fmt.slice_count == 2

    def test_stacked_shape(self, fmt):
        # B is 8x4 logically; the stacked BCCOO keeps original columns.
        assert fmt.stacked.shape[0] == 8
        assert fmt.stacked.ncols == 8  # indexes the original vector


class TestRoundTrip:
    @pytest.mark.parametrize("slices", [1, 2, 4, 8])
    def test_slice_counts(self, slices, random_matrix):
        A = random_matrix(nrows=50, ncols=90, density=0.1)
        fmt = BCCOOPlusMatrix.from_scipy(A, slice_count=slices, block_height=2, block_width=2)
        assert (fmt.to_scipy() != A).nnz == 0

    @pytest.mark.parametrize("slices", [2, 4])
    def test_multiply(self, slices, random_matrix, rng):
        A = random_matrix(nrows=45, ncols=73, density=0.12)
        x = rng.standard_normal(73)
        fmt = BCCOOPlusMatrix.from_scipy(A, slice_count=slices, block_height=3, block_width=2)
        np.testing.assert_allclose(fmt.multiply(x), A @ x, atol=1e-10)

    def test_more_slices_than_columns(self, rng):
        A = sparse.random(20, 6, density=0.4, random_state=0, format="csr")
        fmt = BCCOOPlusMatrix.from_scipy(A, slice_count=8, block_width=2)
        x = rng.standard_normal(6)
        np.testing.assert_allclose(fmt.multiply(x), A @ x, atol=1e-12)

    def test_empty_slice_tolerated(self, rng):
        # All non-zeros in the left half; right slices are empty.
        A = sparse.random(30, 100, density=0.1, random_state=0, format="csr").tolil()
        A[:, 50:] = 0
        A = A.tocsr()
        A.eliminate_zeros()
        fmt = BCCOOPlusMatrix.from_scipy(A, slice_count=4)
        x = rng.standard_normal(100)
        np.testing.assert_allclose(fmt.multiply(x), A @ x, atol=1e-12)


class TestCombine:
    def test_figure5_decomposition(self, paper_matrix_a, rng):
        # A @ y == sum over slices of (slice @ y-window): verify through
        # the stacked partial results.
        fmt = BCCOOPlusMatrix.from_scipy(
            paper_matrix_a, slice_count=2, block_height=2, block_width=2
        )
        x = rng.standard_normal(8)
        y_stacked = fmt.stacked.multiply(x)
        top, bottom = y_stacked[:4], y_stacked[4:]
        dense = paper_matrix_a.toarray()
        np.testing.assert_allclose(top, dense[:, :4] @ x[:4], atol=1e-12)
        np.testing.assert_allclose(bottom, dense[:, 4:] @ x[4:], atol=1e-12)
        np.testing.assert_allclose(fmt.combine(y_stacked), dense @ x, atol=1e-12)

    def test_combine_length_check(self, paper_matrix_a):
        fmt = BCCOOPlusMatrix.from_scipy(paper_matrix_a, slice_count=2)
        with pytest.raises(FormatError, match="stacked result"):
            fmt.combine(np.zeros(3))

    def test_temp_buffer_size(self, random_matrix):
        A = random_matrix(nrows=33, ncols=80)
        fmt = BCCOOPlusMatrix.from_scipy(A, slice_count=4, block_height=2)
        assert fmt.temp_buffer_rows == 4 * 34  # rows padded to block height


class TestFootprint:
    def test_charges_temp_buffer(self, random_matrix):
        A = random_matrix(nrows=60, ncols=120, density=0.1)
        plus = BCCOOPlusMatrix.from_scipy(A, slice_count=4)
        plain = BCCOOMatrix.from_scipy(A)
        fp = plus.footprint()
        assert "slice_temp_buffer" in fp.arrays
        assert fp.total > plain.footprint_bytes()

    def test_invalid_slice_count(self, random_matrix):
        with pytest.raises(FormatError, match="slice_count"):
            BCCOOPlusMatrix.from_scipy(random_matrix(), slice_count=0)
