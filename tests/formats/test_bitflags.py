"""Tests for bit-flag row-index compression."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import bitflags as bf


class TestStopsFromBlockRows:
    def test_paper_figure3(self):
        # Matrix A, 2x2 blocks: block rows [0, 0, 1, 1, 1].
        stops = bf.stops_from_block_rows(np.array([0, 0, 1, 1, 1]))
        # Paper bit flags are [1 0 1 1 0]: stops at positions 1 and 4.
        assert (~stops).astype(int).tolist() == [1, 0, 1, 1, 0]

    def test_last_block_always_stop(self):
        stops = bf.stops_from_block_rows(np.array([0, 0, 0]))
        assert stops.tolist() == [False, False, True]

    def test_every_block_own_row(self):
        stops = bf.stops_from_block_rows(np.array([0, 1, 2, 3]))
        assert stops.all()

    def test_empty(self):
        assert bf.stops_from_block_rows(np.array([], dtype=int)).size == 0

    def test_decreasing_rejected(self):
        with pytest.raises(FormatError, match="non-decreasing"):
            bf.stops_from_block_rows(np.array([1, 0]))

    def test_gap_rows_supported(self):
        # Empty block rows simply don't appear; stops still mark ends.
        stops = bf.stops_from_block_rows(np.array([0, 0, 5, 9]))
        assert stops.tolist() == [False, True, True, True]


class TestPackUnpack:
    @pytest.mark.parametrize("dtype", [np.uint8, np.uint16, np.uint32])
    @pytest.mark.parametrize("n", [1, 7, 8, 9, 31, 32, 33, 100])
    def test_round_trip(self, dtype, n, rng):
        stops = rng.random(n) < 0.4
        packed = bf.pack(stops, dtype)
        back = bf.unpack(packed)
        assert back[:n].tolist() == stops.tolist()

    def test_padding_is_continue_bits(self, rng):
        stops = np.array([True, False, True])
        packed = bf.pack(stops, np.uint32, pad_multiple=16)
        back = bf.unpack(packed)
        assert not back[3:].any()  # padding never closes a segment

    def test_pad_multiple_respected(self):
        packed = bf.pack(np.array([True] * 5), np.uint8, pad_multiple=12)
        # Padded first to the working-set multiple, then to whole words.
        assert packed.nbits >= 12
        assert packed.nbits % 8 == 0
        assert packed.n_valid == 5

    def test_nbits_whole_words(self):
        for dtype in (np.uint8, np.uint16, np.uint32):
            packed = bf.pack(np.array([True] * 3), dtype)
            assert packed.nbits % (np.dtype(dtype).itemsize * 8) == 0

    def test_compression_ratio(self):
        # 32 blocks: int32 row indices = 128 B; uint32 bit flags = 4 B.
        packed = bf.pack(np.ones(32, dtype=bool), np.uint32)
        assert packed.nbytes == 4

    def test_word_dtype_validation(self):
        with pytest.raises(FormatError, match="word dtype"):
            bf.pack(np.array([True]), np.int32)

    def test_bad_pad_multiple(self):
        with pytest.raises(FormatError, match="pad_multiple"):
            bf.pack(np.array([True]), np.uint8, pad_multiple=0)

    def test_n_row_stops(self, rng):
        stops = rng.random(50) < 0.3
        packed = bf.pack(stops, np.uint16)
        assert packed.n_row_stops == int(stops.sum())


class TestRowReconstruction:
    def test_ordinals_count_preceding_stops(self):
        stops = np.array([0, 0, 1, 0, 1, 1, 0], dtype=bool)
        ords = bf.reconstruct_row_ordinals(stops)
        assert ords.tolist() == [0, 0, 0, 1, 1, 2, 3]

    def test_lossless_via_row_map(self, rng):
        # block rows with gaps (empty block rows) reconstruct exactly
        # through the non-empty-row map.
        block_row = np.sort(rng.integers(0, 30, 50))
        stops = bf.stops_from_block_rows(block_row)
        ords = bf.reconstruct_row_ordinals(stops)
        nonempty = np.unique(block_row)
        np.testing.assert_array_equal(nonempty[ords], block_row)

    def test_empty(self):
        assert bf.reconstruct_row_ordinals(np.array([], dtype=bool)).size == 0


class TestFirstResultEntries:
    def test_matches_paper_figure6(self):
        # Matrix C: 16 blocks, row lengths 5/2/3/6, 4 threads x 4 blocks.
        # Figure 6b: first-result entries are [0, 0, 2, 3].
        block_row = np.repeat([0, 1, 2, 3], [5, 2, 3, 6])
        stops = bf.stops_from_block_rows(block_row)
        entries = bf.first_result_entries(stops, 4)
        assert entries.tolist() == [0, 0, 2, 3]

    def test_bruteforce_agreement(self, rng):
        stops = rng.random(64) < 0.35
        for tile in (2, 4, 8, 16):
            entries = bf.first_result_entries(stops, tile)
            expected = [int(stops[: t * tile].sum()) for t in range(64 // tile)]
            assert entries.tolist() == expected

    def test_indivisible_length_rejected(self):
        with pytest.raises(FormatError, match="multiple"):
            bf.first_result_entries(np.zeros(10, dtype=bool), 4)

    def test_bad_tile(self):
        with pytest.raises(FormatError, match="tile_size"):
            bf.first_result_entries(np.zeros(8, dtype=bool), 0)
