"""Tests for non-zero block extraction."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import FormatError
from repro.formats.blocking import BlockLayout, blocks_to_coo_arrays, extract_blocks


class TestExtractBlocks:
    def test_paper_example_2x2(self, paper_matrix_a):
        layout = extract_blocks(paper_matrix_a, 2, 2)
        assert layout.nblocks == 5
        assert layout.block_row.tolist() == [0, 0, 1, 1, 1]
        assert layout.block_col.tolist() == [1, 3, 0, 2, 3]

    def test_paper_example_block_values(self, paper_matrix_a):
        layout = extract_blocks(paper_matrix_a, 2, 2)
        # First block is [[a, 0], [d, e]] = [[1, 0], [4, 5]].
        np.testing.assert_array_equal(layout.values[0], [[1, 0], [4, 5]])
        # Second block is [[b, c], [f, 0]] = [[2, 3], [6, 0]].
        np.testing.assert_array_equal(layout.values[1], [[2, 3], [6, 0]])

    def test_1x1_blocks_equal_coo(self, random_matrix):
        A = random_matrix()
        layout = extract_blocks(A, 1, 1)
        coo = A.tocoo()
        coo.sum_duplicates()
        assert layout.nblocks == coo.nnz
        assert layout.fill_ratio == 1.0

    def test_row_major_order(self, random_matrix):
        A = random_matrix(nrows=50, ncols=50, density=0.2)
        layout = extract_blocks(A, 3, 2)
        key = layout.block_row.astype(np.int64) * layout.n_block_cols + layout.block_col
        assert (np.diff(key) > 0).all()

    def test_fill_ratio_at_least_one(self, random_matrix):
        A = random_matrix()
        for h, w in [(1, 1), (2, 2), (3, 4), (4, 1)]:
            layout = extract_blocks(A, h, w)
            assert layout.fill_ratio >= 1.0

    def test_nnz_preserved(self, random_matrix):
        A = random_matrix()
        for h, w in [(2, 2), (4, 4)]:
            assert extract_blocks(A, h, w).nnz == A.nnz

    def test_non_divisible_dimensions(self):
        # 5x7 matrix with 2x2 blocks: ragged edges must round-trip.
        A = sparse.random(5, 7, density=0.5, random_state=0, format="csr")
        layout = extract_blocks(A, 2, 2)
        rows, cols, data = blocks_to_coo_arrays(layout)
        back = sparse.coo_matrix((data, (rows, cols)), shape=(6, 8)).tocsr()
        np.testing.assert_allclose(back[:5, :7].toarray(), A.toarray())

    def test_invalid_block_dims(self, paper_matrix_a):
        with pytest.raises(FormatError):
            extract_blocks(paper_matrix_a, 0, 2)
        with pytest.raises(FormatError):
            extract_blocks(paper_matrix_a, 2, -1)

    def test_empty_matrix(self):
        A = sparse.csr_matrix((8, 8))
        layout = extract_blocks(A, 2, 2)
        assert layout.nblocks == 0
        rows, cols, data = blocks_to_coo_arrays(layout)
        assert rows.size == cols.size == data.size == 0

    def test_stored_values_counts_fill(self, paper_matrix_a):
        layout = extract_blocks(paper_matrix_a, 2, 2)
        assert layout.stored_values == 5 * 4
        assert layout.nnz == 16
        assert layout.fill_ratio == pytest.approx(20 / 16)


class TestBlockLayoutValidate:
    def _layout(self, **overrides):
        base = dict(
            shape=(4, 4),
            block_height=2,
            block_width=2,
            block_row=np.array([0, 1], dtype=np.int32),
            block_col=np.array([0, 1], dtype=np.int32),
            values=np.zeros((2, 2, 2)),
        )
        base.update(overrides)
        return BlockLayout(**base)

    def test_valid_passes(self):
        self._layout().validate()

    def test_wrong_values_shape(self):
        with pytest.raises(FormatError, match="values shape"):
            self._layout(values=np.zeros((2, 3, 2))).validate()

    def test_unordered_blocks(self):
        with pytest.raises(FormatError, match="row-major"):
            self._layout(
                block_row=np.array([1, 0], dtype=np.int32),
                block_col=np.array([0, 0], dtype=np.int32),
            ).validate()

    def test_out_of_range_block_col(self):
        with pytest.raises(FormatError, match="block_col"):
            self._layout(block_col=np.array([0, 9], dtype=np.int32)).validate()
