"""Tests for the classic format zoo: COO, CSR, ELL, DIA, HYB, BCSR, BELL, SELL."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import FormatError, FormatNotApplicableError
from repro.formats import (
    BCSRMatrix,
    BELLMatrix,
    COOMatrix,
    CSRMatrix,
    DIAMatrix,
    ELLMatrix,
    HYBMatrix,
    SELLMatrix,
    available_formats,
    get_format,
)

ALL_CLASSIC = [
    ("coo", {}),
    ("csr", {}),
    ("ell", {}),
    ("dia", {"max_expansion": 100.0}),
    ("hyb", {}),
    ("bcsr", {"block_height": 2, "block_width": 2}),
    ("bell", {"block_height": 2, "block_width": 2}),
    ("sell", {"slice_height": 8}),
]


class TestRegistry:
    def test_all_formats_registered(self):
        names = set(available_formats())
        assert {
            "coo",
            "csr",
            "ell",
            "dia",
            "hyb",
            "bcsr",
            "bell",
            "sell",
            "bccoo",
            "bccoo+",
        } <= names

    def test_get_format_unknown(self):
        with pytest.raises(FormatError, match="unknown format"):
            get_format("nope")


@pytest.mark.parametrize("name,kw", ALL_CLASSIC)
class TestUniformContract:
    """Every format satisfies the SparseFormat contract."""

    def test_round_trip_lossless(self, name, kw, random_matrix):
        A = random_matrix(nrows=40, ncols=40, density=0.15)
        fmt = get_format(name).from_scipy(A, **kw)
        assert (fmt.to_scipy() != A).nnz == 0

    def test_multiply_matches_scipy(self, name, kw, random_matrix, rng):
        A = random_matrix(nrows=40, ncols=40, density=0.15)
        x = rng.standard_normal(40)
        fmt = get_format(name).from_scipy(A, **kw)
        np.testing.assert_allclose(fmt.multiply(x), A @ x, atol=1e-10)

    def test_footprint_positive(self, name, kw, random_matrix):
        A = random_matrix(nrows=40, ncols=40, density=0.15)
        fmt = get_format(name).from_scipy(A, **kw)
        fp = fmt.footprint()
        assert fp.total > 0
        assert all(v >= 0 for v in fp.arrays.values())

    def test_wrong_vector_length(self, name, kw, random_matrix):
        A = random_matrix(nrows=30, ncols=50, density=0.15)
        fmt = get_format(name).from_scipy(A, **kw)
        with pytest.raises(FormatError, match="vector length"):
            fmt.multiply(np.zeros(49))

    def test_paper_example(self, name, kw, paper_matrix_a, rng):
        x = rng.standard_normal(8)
        fmt = get_format(name).from_scipy(paper_matrix_a, **kw)
        np.testing.assert_allclose(fmt.multiply(x), paper_matrix_a @ x, atol=1e-12)


class TestCOO:
    def test_footprint_is_12_bytes_per_nnz(self, random_matrix):
        A = random_matrix()
        fmt = COOMatrix.from_scipy(A)
        assert fmt.footprint_bytes() == A.nnz * 12

    def test_row_major_sorted(self, random_matrix):
        fmt = COOMatrix.from_scipy(random_matrix())
        key = fmt.row.astype(np.int64) * fmt.ncols + fmt.col
        assert (np.diff(key) > 0).all()


class TestCSR:
    def test_row_lengths(self, paper_matrix_a):
        fmt = CSRMatrix.from_scipy(paper_matrix_a)
        assert fmt.row_lengths().tolist() == [3, 3, 4, 6]

    def test_empty_rows(self, empty_row_matrix, rng):
        fmt = CSRMatrix.from_scipy(empty_row_matrix)
        x = rng.standard_normal(20)
        np.testing.assert_allclose(fmt.multiply(x), empty_row_matrix @ x)

    def test_footprint(self, random_matrix):
        A = random_matrix(nrows=25)
        fp = CSRMatrix.from_scipy(A).footprint()
        assert fp.arrays["row_ptr"] == 26 * 4
        assert fp.arrays["col_index"] == A.nnz * 4


class TestELL:
    def test_uniform_rows_no_waste(self, stencil_matrix):
        fmt = ELLMatrix.from_scipy(stencil_matrix)
        assert fmt.K == 3
        assert fmt.stored_slots <= stencil_matrix.nnz + 2 * 3  # edge rows

    def test_skewed_rejected(self, skewed_matrix):
        with pytest.raises(FormatNotApplicableError, match="too skewed"):
            ELLMatrix.from_scipy(skewed_matrix)

    def test_expansion_budget_override(self, skewed_matrix):
        fmt = ELLMatrix.from_scipy(skewed_matrix, max_expansion=1e9)
        assert fmt.K >= 300  # the hub row (plus its pre-existing entries)

    def test_column_major_layout(self, paper_matrix_a):
        fmt = ELLMatrix.from_scipy(paper_matrix_a)
        assert fmt.col_index.shape == (6, 4)  # (K, nrows)


class TestDIA:
    def test_stencil_is_three_diagonals(self, stencil_matrix):
        fmt = DIAMatrix.from_scipy(stencil_matrix)
        assert fmt.ndiags == 3
        assert fmt.offsets.tolist() == [-1, 0, 1]

    def test_scattered_rejected(self, rng):
        A = sparse.random(500, 500, density=0.02, random_state=1, format="csr")
        with pytest.raises(FormatNotApplicableError, match="diagonal"):
            DIAMatrix.from_scipy(A)

    def test_rectangular(self, rng):
        A = sparse.diags([np.ones(30)], [5], shape=(30, 40)).tocsr()
        fmt = DIAMatrix.from_scipy(A)
        x = rng.standard_normal(40)
        np.testing.assert_allclose(fmt.multiply(x), A @ x)


class TestHYB:
    def test_tune_k_uniform_prefers_full_ell(self, stencil_matrix):
        k = HYBMatrix.tune_k(stencil_matrix)
        assert k == 3  # all rows fit; no COO spill

    def test_tune_k_skewed_small(self, skewed_matrix):
        k = HYBMatrix.tune_k(skewed_matrix)
        assert k < 20  # hub row must spill

    def test_split_preserves_nnz(self, skewed_matrix):
        fmt = HYBMatrix.from_scipy(skewed_matrix, k=5)
        assert fmt.ell.nnz + fmt.coo.nnz == skewed_matrix.nnz

    def test_explicit_k_zero_is_pure_coo(self, random_matrix):
        A = random_matrix()
        fmt = HYBMatrix.from_scipy(A, k=0)
        assert fmt.ell.nnz == 0
        assert fmt.coo.nnz == A.nnz

    def test_negative_k_rejected(self, random_matrix):
        with pytest.raises(FormatError, match="k must be"):
            HYBMatrix.from_scipy(random_matrix(), k=-1)


class TestBCSR:
    def test_block_row_ptr(self, paper_matrix_a):
        fmt = BCSRMatrix.from_scipy(paper_matrix_a, block_height=2, block_width=2)
        assert fmt.block_row_ptr.tolist() == [0, 2, 5]
        assert fmt.nblocks == 5

    def test_fill_in_counted_in_footprint(self, paper_matrix_a):
        fmt = BCSRMatrix.from_scipy(paper_matrix_a, block_height=2, block_width=2)
        assert fmt.footprint().arrays["values"] == 5 * 4 * 4  # 5 blocks x 2x2 x fp32


class TestBELL:
    def test_uniform_width(self, paper_matrix_a):
        fmt = BELLMatrix.from_scipy(paper_matrix_a, block_height=2, block_width=2)
        assert fmt.K == 3  # widest block row has 3 blocks
        assert fmt.n_block_rows == 2

    def test_skewed_rejected(self, skewed_matrix):
        with pytest.raises(FormatNotApplicableError):
            BELLMatrix.from_scipy(skewed_matrix, block_height=2, block_width=2)


class TestSELL:
    def test_per_slice_widths(self, skewed_matrix):
        fmt = SELLMatrix.from_scipy(skewed_matrix, slice_height=32)
        widths = fmt.slice_width
        assert widths.max() >= 300  # hub row's slice
        assert np.median(widths) < 20  # other slices stay small

    def test_smaller_than_ell(self, skewed_matrix):
        sell = SELLMatrix.from_scipy(skewed_matrix, slice_height=32)
        ell = ELLMatrix.from_scipy(skewed_matrix, max_expansion=1e9)
        assert sell.footprint_bytes() < ell.footprint_bytes()

    def test_bad_slice_height(self, random_matrix):
        with pytest.raises(FormatError, match="slice_height"):
            SELLMatrix.from_scipy(random_matrix(), slice_height=0)
