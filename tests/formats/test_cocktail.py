"""Tests for the COCKTAIL partitioned format."""

import numpy as np
import pytest
from scipy import sparse

from repro.formats import CocktailMatrix, COOMatrix, CSRMatrix
from repro.gpu import GTX680
from repro.kernels import get_kernel


@pytest.fixture
def stencil_plus_hubs(rng):
    n = 600
    body = sparse.diags(
        [np.ones(n - 1), 2.0 * np.ones(n), np.ones(n - 1)], [-1, 0, 1]
    ).tolil()
    for hub in (3, 450):
        body[hub, rng.choice(n, 400, replace=False)] = 1.0
    out = body.tocsr()
    out.eliminate_zeros()
    return out


class TestConstruction:
    def test_uniform_matrix_stays_single(self, stencil_matrix):
        fmt = CocktailMatrix.from_scipy(stencil_matrix)
        assert fmt.recipe.startswith("single:")
        assert len(fmt.partitions) == 1

    def test_stencil_plus_hubs_splits(self, stencil_plus_hubs):
        # A tridiagonal body (DIA prices it at 4 bytes/nnz) plus hub
        # rows that break DIA/ELL: only a split prices both well.
        fmt = CocktailMatrix.from_scipy(stencil_plus_hubs)
        assert "+" in fmt.recipe
        assert len(fmt.partitions) == 2

    def test_partitions_cover_disjoint_rows(self, stencil_plus_hubs):
        fmt = CocktailMatrix.from_scipy(stencil_plus_hubs)
        seen = None
        for _, part in fmt.partitions:
            rows = np.unique(part.to_scipy().tocoo().row)
            if seen is None:
                seen = set(rows.tolist())
            else:
                assert not (seen & set(rows.tolist()))


class TestContract:
    def test_round_trip(self, skewed_matrix, stencil_matrix, random_matrix):
        for A in (skewed_matrix, stencil_matrix, random_matrix()):
            fmt = CocktailMatrix.from_scipy(A)
            assert (fmt.to_scipy() != A).nnz == 0

    def test_multiply(self, skewed_matrix, rng):
        fmt = CocktailMatrix.from_scipy(skewed_matrix)
        x = rng.standard_normal(skewed_matrix.shape[1])
        np.testing.assert_allclose(fmt.multiply(x), skewed_matrix @ x, atol=1e-9)

    def test_footprint_beats_worst_single(self, skewed_matrix):
        cocktail = CocktailMatrix.from_scipy(skewed_matrix).footprint_bytes()
        coo = COOMatrix.from_scipy(skewed_matrix).footprint_bytes()
        assert cocktail <= coo

    def test_footprint_labels_partitions(self, stencil_plus_hubs):
        fp = CocktailMatrix.from_scipy(stencil_plus_hubs).footprint()
        assert any(k.endswith(("_values", "_bands")) for k in fp.arrays)
        assert "partition_map" in fp.arrays


class TestKernel:
    def test_numerics(self, skewed_matrix, rng):
        fmt = CocktailMatrix.from_scipy(skewed_matrix)
        x = rng.standard_normal(skewed_matrix.shape[1])
        res = get_kernel("cocktail").run(fmt, x, GTX680)
        np.testing.assert_allclose(res.y, skewed_matrix @ x, atol=1e-9)

    def test_launches_accumulate(self, skewed_matrix, rng):
        fmt = CocktailMatrix.from_scipy(skewed_matrix)
        x = rng.standard_normal(skewed_matrix.shape[1])
        res = get_kernel("cocktail").run(fmt, x, GTX680)
        # One launch per partition at minimum (COO's two count extra).
        assert res.stats.n_launches >= len(fmt.partitions)

    def test_single_partition_single_launchish(self, stencil_matrix, rng):
        fmt = CocktailMatrix.from_scipy(stencil_matrix)
        x = rng.standard_normal(stencil_matrix.shape[1])
        res = get_kernel("cocktail").run(fmt, x, GTX680)
        np.testing.assert_allclose(res.y, stencil_matrix @ x, atol=1e-10)
