"""Tests for column-index delta compression."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.delta import SENTINEL, compress_columns, decompress_columns


class TestRoundTrip:
    def test_small_indices(self):
        col = np.array([1, 3, 0, 2, 3, 7, 7, 9])
        dc = compress_columns(col, 4)
        np.testing.assert_array_equal(decompress_columns(dc), col)

    def test_random(self, rng):
        for _ in range(20):
            tiles = int(rng.integers(1, 10))
            tile = int(rng.choice([1, 2, 4, 8, 16]))
            col = rng.integers(0, 5_000_000, tiles * tile)
            dc = compress_columns(col, tile)
            np.testing.assert_array_equal(decompress_columns(dc), col)

    def test_sorted_stream_compresses_fully(self, rng):
        col = np.sort(rng.integers(0, 30_000, 64))
        dc = compress_columns(col, 16)
        # Small deltas + per-tile bases: no fallbacks at all.
        assert dc.n_fallbacks == 0
        assert dc.n_tiles == 4

    def test_large_jumps_fall_back(self):
        col = np.array([0, 1_000_000, 0, 2_000_000])
        dc = compress_columns(col, 4)
        assert dc.n_fallbacks >= 2
        np.testing.assert_array_equal(decompress_columns(dc), col)


class TestSentinelSemantics:
    def test_genuine_minus_one_difference_uses_fallback(self):
        # A true difference of -1 collides with the sentinel; the paper's
        # scheme stays correct because the fallback holds the truth.
        col = np.array([5, 4, 3, 2])
        dc = compress_columns(col, 4)
        assert (dc.deltas[1:] == SENTINEL).all()
        np.testing.assert_array_equal(decompress_columns(dc), col)

    def test_tile_bases_are_absolute(self):
        col = np.array([100, 101, 200, 201])
        dc = compress_columns(col, 2)
        assert dc.start_cols.tolist() == [100, 200]
        assert dc.deltas[0] == 0 and dc.deltas[2] == 0

    def test_wide_tile_start_needs_no_fallback(self):
        # The per-tile base spares tile starts from int16 overflow even
        # past column 32767.
        col = np.array([70_000, 70_001])
        dc = compress_columns(col, 2)
        assert dc.n_fallbacks == 0
        np.testing.assert_array_equal(decompress_columns(dc), col)

    def test_fallback_fraction(self):
        col = np.array([0, 1, 2, 3])
        dc = compress_columns(col, 4)
        assert dc.fallback_fraction == 0.0
        col = np.array([0, 1_000_000, 2_000_000, 3_000_000])
        dc = compress_columns(col, 4)
        assert dc.fallback_fraction == pytest.approx(0.75)

    def test_deltas_are_int16(self):
        dc = compress_columns(np.array([0, 1, 2, 3]), 4)
        assert dc.deltas.dtype == np.int16


class TestValidation:
    def test_indivisible_length(self):
        with pytest.raises(FormatError, match="multiple"):
            compress_columns(np.arange(10), 4)

    def test_negative_indices(self):
        with pytest.raises(FormatError, match="non-negative"):
            compress_columns(np.array([-1, 0, 1, 2]), 4)

    def test_bad_tile(self):
        with pytest.raises(FormatError, match="tile_size"):
            compress_columns(np.arange(4), 0)

    def test_empty(self):
        dc = compress_columns(np.empty(0, dtype=np.int64), 4)
        assert decompress_columns(dc).size == 0
