"""Tests for the Table 3 footprint comparison machinery."""

import pytest
from scipy import sparse

from repro.formats import (
    FP32,
    FP64,
    bccoo_block_candidates,
    best_bccoo_footprint,
    best_single_footprint,
    cocktail_footprint,
    footprint_report,
)


@pytest.fixture
def medium(rng):
    return sparse.random(300, 300, density=0.03, random_state=5, format="csr")


class TestBestSingle:
    def test_returns_valid_label(self, medium):
        nbytes, label = best_single_footprint(medium)
        assert nbytes > 0
        assert isinstance(label, str) and label

    def test_dia_wins_on_stencil(self, stencil_matrix):
        _, label = best_single_footprint(stencil_matrix)
        assert label == "dia"

    def test_beats_or_ties_coo(self, medium):
        from repro.formats import COOMatrix

        nbytes, _ = best_single_footprint(medium)
        assert nbytes <= COOMatrix.from_scipy(medium).footprint_bytes()


class TestCocktail:
    def test_never_worse_than_best_single(self, medium, skewed_matrix):
        for A in (medium, skewed_matrix):
            single, _ = best_single_footprint(A)
            cocktail, _ = cocktail_footprint(A)
            assert cocktail <= single

    def test_split_helps_skewed(self, skewed_matrix):
        _, recipe = cocktail_footprint(skewed_matrix)
        # The hub row should push the cocktail to an actual partition
        # (or at worst the single recipe; either way a recipe string).
        assert recipe


class TestBccooCandidates:
    def test_keep_limit(self, medium):
        assert len(bccoo_block_candidates(medium, keep=4)) == 4
        assert len(bccoo_block_candidates(medium, keep=2)) == 2

    def test_sorted_ascending(self, medium):
        cands = bccoo_block_candidates(medium, keep=12)
        sizes = [b for _, _, b in cands]
        assert sizes == sorted(sizes)

    def test_dense_prefers_large_blocks(self):
        import numpy as np

        A = sparse.csr_matrix(np.ones((64, 64)))
        h, w, _ = bccoo_block_candidates(A, keep=1)[0]
        assert h * w == 16  # 4x4 wins: fewest index bytes, no fill-in

    def test_scattered_prefers_1x1(self):
        A = sparse.random(400, 400, density=0.005, random_state=2, format="csr")
        h, w, _ = bccoo_block_candidates(A, keep=1)[0]
        assert (h, w) == (1, 1)


class TestReport:
    def test_full_row(self, medium):
        rep = footprint_report(medium, name="medium")
        assert rep.name == "medium"
        assert rep.bccoo <= rep.coo
        assert rep.cocktail <= rep.best_single
        assert rep.as_mb(rep.coo) == pytest.approx(rep.coo / 2**20)
        assert rep.as_mb(None) is None

    def test_ell_na_for_skewed(self, skewed_matrix):
        rep = footprint_report(skewed_matrix)
        assert rep.ell is None

    def test_fp64_larger_than_fp32(self, medium):
        nbytes32, _ = best_bccoo_footprint(medium, FP32)
        nbytes64, _ = best_bccoo_footprint(medium, FP64)
        assert nbytes64 > nbytes32
