"""Golden-file pin of the byte accounting in :mod:`repro.formats.footprint`.

The serving cache's budget, the tuner's block-dimension pruning, and
Table 3 all trust ``footprint_bytes()``; a silent accounting change
would shift every one of them.  This suite rebuilds four hand-crafted
matrices -- each the natural habitat of one format family -- and checks
every family's footprint, plus the full ``footprint_report`` row,
against ``tests/formats/golden/footprints.json``.

The matrices are constructed entry-by-entry (no random generators) so
the goldens cannot drift with scipy versions.  To regenerate after an
*intentional* accounting change, run this file as a script:
``PYTHONPATH=src python tests/formats/test_footprint_golden.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from scipy import sparse

from repro.formats import (
    BCCOOMatrix,
    BCSRMatrix,
    BELLMatrix,
    COOMatrix,
    CSRMatrix,
    DIAMatrix,
    ELLMatrix,
    HYBMatrix,
    SELLMatrix,
)
from repro.formats.footprint import footprint_report

GOLDEN_PATH = Path(__file__).parent / "golden" / "footprints.json"


def banded(n=64, offsets=(-2, -1, 0, 1, 2)):
    """Pure band structure: DIA's natural habitat."""
    diags = [np.arange(1, n + 1 - abs(k), dtype=np.float64) for k in offsets]
    return sparse.diags(diags, offsets, shape=(n, n), format="csr")


def uniform_rows(n=48, per_row=6):
    """Constant row length: ELL's natural habitat."""
    rows, cols, vals = [], [], []
    for i in range(n):
        for j in range(per_row):
            rows.append(i)
            cols.append((i * 7 + j * 5) % n)
            vals.append(float(i + j + 1))
    A = sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    A.sum_duplicates()
    return A


def blocky(n=64, bs=4):
    """Dense 4x4 tiles: the blocked formats' natural habitat."""
    dense = np.zeros((n, n))
    for b in range(0, n, bs * 2):
        dense[b : b + bs, b : b + bs] = np.arange(1, bs * bs + 1).reshape(bs, bs)
        j = (b + bs * 3) % n
        dense[b : b + bs, j : j + bs] = (
            np.arange(1, bs * bs + 1).reshape(bs, bs) * 0.5
        )
    return sparse.csr_matrix(dense)


def skewed(n=60):
    """Diagonal plus one hub row: HYB/COCKTAIL's natural habitat."""
    rows, cols, vals = [], [], []
    for i in range(n):
        rows.append(i)
        cols.append(i)
        vals.append(float(i + 1))
    for j in range(0, n, 2):
        rows.append(7)
        cols.append(j)
        vals.append(1.0 + j)
    A = sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    A.sum_duplicates()
    return A


MATRICES = {
    "banded": banded,
    "uniform": uniform_rows,
    "blocky": blocky,
    "skewed": skewed,
}

#: One representative constructor per format family.
FAMILIES = {
    "coo": lambda A: COOMatrix.from_scipy(A),
    "csr": lambda A: CSRMatrix.from_scipy(A),
    "ell": lambda A: ELLMatrix.from_scipy(A),
    "dia": lambda A: DIAMatrix.from_scipy(A),
    "hyb": lambda A: HYBMatrix.from_scipy(A),
    "sell32": lambda A: SELLMatrix.from_scipy(A, slice_height=32),
    "bcsr2x2": lambda A: BCSRMatrix.from_scipy(A, block_height=2, block_width=2),
    "bell2x2": lambda A: BELLMatrix.from_scipy(A, block_height=2, block_width=2),
    "bccoo2x2": lambda A: BCCOOMatrix.from_scipy(A, block_height=2, block_width=2),
}


def compute_entry(A) -> dict:
    families = {}
    for fname, build in FAMILIES.items():
        try:
            families[fname] = int(build(A).footprint_bytes())
        except Exception:
            families[fname] = None  # format N/A on this structure
    rep = footprint_report(A)
    return {
        "nnz": int(A.nnz),
        "shape": list(A.shape),
        "families": families,
        "report": {
            "coo": rep.coo,
            "ell": rep.ell,
            "best_single": rep.best_single,
            "best_single_format": rep.best_single_format,
            "cocktail": rep.cocktail,
            "cocktail_recipe": rep.cocktail_recipe,
            "bccoo": rep.bccoo,
            "bccoo_block": list(rep.bccoo_block),
        },
    }


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as f:
        return json.load(f)


@pytest.mark.parametrize("name", sorted(MATRICES))
def test_footprints_match_golden(name, golden):
    entry = compute_entry(MATRICES[name]())
    assert entry == golden[name], (
        f"byte accounting for {name!r} diverged from the golden file; "
        f"if the change is intentional, regenerate with "
        f"`PYTHONPATH=src python {Path(__file__).name}` from the repo root"
    )


def test_golden_covers_every_family():
    """Each format family has at least one matrix where it is applicable
    (non-None), so the accounting of every family is actually pinned."""
    with GOLDEN_PATH.open() as f:
        golden = json.load(f)
    for fname in FAMILIES:
        assert any(
            golden[m]["families"][fname] is not None for m in golden
        ), f"no golden matrix exercises family {fname!r}"


def test_each_habitat_is_won_by_its_format():
    """Sanity on the fixtures: the intended family wins its habitat."""
    with GOLDEN_PATH.open() as f:
        golden = json.load(f)
    assert golden["banded"]["report"]["best_single_format"] == "dia"
    assert golden["blocky"]["report"]["best_single_format"].startswith("bcsr")
    assert golden["skewed"]["report"]["best_single_format"] == "hyb"


if __name__ == "__main__":  # golden regeneration entry point
    data = {name: compute_entry(make()) for name, make in MATRICES.items()}
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with GOLDEN_PATH.open("w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {GOLDEN_PATH}")
