"""Tests for the offline-transpose device layout."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.layout import (
    device_order_indices,
    from_device_order,
    to_device_order,
)
from repro.gpu.memory import warp_transactions


class TestPermutation:
    def test_round_trip(self, rng):
        blocks = rng.standard_normal((4 * 32 * 8, 2, 2))
        dev = to_device_order(blocks, wg_size=32, tile=8)
        back = from_device_order(dev, wg_size=32, tile=8)
        np.testing.assert_array_equal(back, blocks)

    def test_small_example(self):
        # wg_size=2, tile=3: natural (t, i) -> device i*2 + t.
        natural = np.arange(6)
        dev = to_device_order(natural, wg_size=2, tile=3)
        # device position j holds natural[(j%2)*3 + j//2]
        assert dev.tolist() == [0, 3, 1, 4, 2, 5]

    def test_is_permutation(self):
        perm = device_order_indices(128, wg_size=4, tile=4)
        assert sorted(perm.tolist()) == list(range(128))

    def test_rejects_unpadded(self):
        with pytest.raises(FormatError, match="working set"):
            to_device_order(np.zeros(100), wg_size=32, tile=8)

    def test_rejects_bad_geometry(self):
        with pytest.raises(FormatError):
            device_order_indices(64, wg_size=0, tile=8)


class TestCoalescingPurpose:
    def test_device_order_coalesces_step_reads(self):
        """At sequential step i, a warp reads consecutive device slots.

        This is the property the offline transpose exists for: the
        natural order costs one transaction per lane, the device order
        one transaction per warp.
        """
        wg_size, tile = 32, 16
        n = wg_size * tile
        elem = 4  # fp32

        # Addresses each lane touches at step 0, natural layout:
        lanes = np.arange(wg_size)
        natural_addr = (lanes * tile) * elem
        txn_natural = warp_transactions(natural_addr.reshape(1, -1))[0]

        # Same logical reads through the device permutation:
        perm = device_order_indices(n, wg_size, tile)
        inv = np.empty(n, dtype=np.int64)
        inv[perm] = np.arange(n)
        device_addr = inv[lanes * tile] * elem
        txn_device = warp_transactions(device_addr.reshape(1, -1))[0]

        assert txn_device == 1
        assert txn_natural == tile * wg_size * elem // 128
        assert txn_device < txn_natural
