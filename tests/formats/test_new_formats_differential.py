"""Differential harness pinning the two new formats to the CSR fold.

Merge-path CSR and RG-CSR join the cocktail under the same contract
BCCOO ships with: every backend (``faithful``, ``fast``, ``auto``) must
produce output *bit-identical* (``np.array_equal``, zero tolerance) to
the strict sequential per-row CSR fold, and therefore to BCCOO run on
the same operand.  The sweep below covers

    format x backend x matrix class x fault site

where the matrix classes are scaled-down versions of the benchmark
families (band, uniform dense rows, blocked band) plus the adversarial
shapes from the backend corpus (hub row, empty rows, single column).
Under an injected fault, fast and auto both delegate to the faithful
interpreter, so all three backends must fail -- or corrupt -- the same
way; that delegation is re-proven here for the new kernels' hook sites.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from scipy import sparse

from repro.backends import get_backend
from repro.errors import ReproError
from repro.fault import FaultPlan
from repro.fault.injection import fault_scope
from repro.formats import BCCOOMatrix, MergeCSRMatrix, RGCSRMatrix
from repro.gpu import get_device
from repro.kernels.config import YaSpMVConfig

DEVICE = get_device("gtx680")
BACKENDS = ["faithful", "fast", "auto"]
FORMATS = [MergeCSRMatrix, RGCSRMatrix]

#: Fault sites wired into the merge-path and row-grouped kernels:
#: stop-mask bit flips, truncated column streams, NaN/Inf partials.
FAULT_SITES = [
    "format.bitflag_flip",
    "format.column_truncate",
    "kernel.nan_partial",
    "kernel.inf_partial",
]


def _matrix_classes():
    """Benchmark families at test scale plus the adversarial corpus."""
    rng = np.random.default_rng(1207)
    out = {}
    n = 160
    out["stencil_band"] = (sparse.diags(
        [np.ones(n - 2), np.ones(n - 1), 2.0 * np.ones(n),
         np.ones(n - 1), np.ones(n - 2)],
        (-2, -1, 0, 1, 2), format="csr",
    ) * 1.0).tocsr()
    nr, nc, row_len = 180, 90, 12
    cols = np.sort(
        (np.arange(nr)[:, None] * 7 + np.arange(row_len)[None, :] * 13) % nc,
        axis=1,
    )
    out["dense_rows_uniform"] = sparse.coo_matrix(
        (rng.standard_normal(nr * row_len),
         (np.repeat(np.arange(nr), row_len), cols.ravel())),
        shape=(nr, nc),
    ).tocsr()
    tri = sparse.diags([np.ones(29), np.ones(30), np.ones(29)], (-1, 0, 1))
    out["blocked_banded"] = (
        sparse.kron(tri, np.ones((4, 4)), format="csr") * 1.0
    ).tocsr()
    hub = sparse.random(90, 90, density=0.02, random_state=2, format="lil")
    hub[7, :70] = rng.standard_normal(70)
    out["hub_row"] = hub.tocsr()
    empty = sparse.random(60, 50, density=0.05, random_state=3,
                          format="lil")
    empty[10, :] = 0
    empty[11, :] = 0
    out["empty_rows"] = empty.tocsr()
    out["single_col"] = sparse.csr_matrix(rng.standard_normal((30, 1)))
    for A in out.values():
        A.sum_duplicates()
        A.eliminate_zeros()
    return out


def _csr_fold(csr, x):
    """The strict sequential per-row CSR reference fold."""
    rows = np.repeat(np.arange(csr.shape[0]), np.diff(csr.indptr))
    return np.bincount(
        rows, weights=csr.data * x[csr.indices], minlength=csr.shape[0]
    )


def _assert_stats_equal(a, b):
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            assert np.array_equal(np.asarray(va), np.asarray(vb)), f.name
        else:
            assert va == vb, f"{f.name}: {va!r} != {vb!r}"


@pytest.fixture(scope="module")
def corpus():
    return _matrix_classes()


class TestBitIdentity:
    """format x backend x class: exact equality with the CSR fold."""

    @pytest.mark.parametrize("fmt_cls", FORMATS, ids=lambda c: c.__name__)
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_matches_csr_fold(self, corpus, fmt_cls, backend_name):
        backend = get_backend(backend_name)
        cfg = YaSpMVConfig()
        rng = np.random.default_rng(5)
        for name, A in corpus.items():
            fmt = fmt_cls.from_scipy(A)
            x = rng.standard_normal(A.shape[1])
            y = backend.execute(fmt, x, DEVICE, cfg).y
            assert np.array_equal(y, _csr_fold(A, x)), (
                f"{fmt_cls.__name__}/{backend_name} drifted on {name}"
            )

    @pytest.mark.parametrize("fmt_cls", FORMATS, ids=lambda c: c.__name__)
    def test_matches_bccoo_same_operand(self, corpus, fmt_cls):
        faithful = get_backend("faithful")
        cfg = YaSpMVConfig()
        rng = np.random.default_rng(6)
        for name, A in corpus.items():
            x = rng.standard_normal(A.shape[1])
            y_new = faithful.execute(
                fmt_cls.from_scipy(A), x, DEVICE, cfg
            ).y
            y_bccoo = faithful.execute(
                BCCOOMatrix.from_scipy(A), x, DEVICE, cfg
            ).y
            assert np.array_equal(y_new, y_bccoo), name

    @pytest.mark.parametrize("fmt_cls", FORMATS, ids=lambda c: c.__name__)
    def test_stats_identical_across_backends(self, corpus, fmt_cls):
        # The cost model is part of the contract: the fast path must
        # report the exact counters the interpreter would.
        faithful, fast = get_backend("faithful"), get_backend("fast")
        cfg = YaSpMVConfig()
        rng = np.random.default_rng(7)
        for name, A in corpus.items():
            fmt = fmt_cls.from_scipy(A)
            x = rng.standard_normal(A.shape[1])
            rf = faithful.execute(fmt, x, DEVICE, cfg)
            rv = fast.execute(fmt, x, DEVICE, cfg)
            assert np.array_equal(rf.y, rv.y), name
            _assert_stats_equal(rf.stats, rv.stats)

    @pytest.mark.parametrize("fmt_cls", FORMATS, ids=lambda c: c.__name__)
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_spmm_exact(self, corpus, fmt_cls, k):
        faithful, fast = get_backend("faithful"), get_backend("fast")
        cfg = YaSpMVConfig()
        rng = np.random.default_rng(8)
        for name, A in corpus.items():
            fmt = fmt_cls.from_scipy(A)
            X = rng.standard_normal((A.shape[1], k))
            rf = faithful.execute_multi(fmt, X, DEVICE, cfg)
            rv = fast.execute_multi(fmt, X, DEVICE, cfg)
            assert np.array_equal(rf.y, rv.y), name
            _assert_stats_equal(rf.stats, rv.stats)
            for j in range(k):
                assert np.array_equal(rf.y[:, j], _csr_fold(A, X[:, j])), (
                    f"{name} col {j}"
                )

    @pytest.mark.parametrize("fmt_cls", FORMATS, ids=lambda c: c.__name__)
    def test_extreme_values_exact(self, fmt_cls):
        # Denormals, huge magnitudes: any reassociation in the fast
        # path's segmented reduction would change these sums.
        rng = np.random.default_rng(11)
        A = sparse.random(80, 80, density=0.1, random_state=4, format="csr")
        A.data = np.concatenate([
            rng.standard_normal(A.nnz // 3) * 1e120,
            rng.standard_normal(A.nnz // 3) * 1e-120,
            rng.standard_normal(A.nnz - 2 * (A.nnz // 3)),
        ])[np.argsort(rng.random(A.nnz))]
        fmt = fmt_cls.from_scipy(A)
        x = rng.standard_normal(80) * np.exp(rng.uniform(-80, 80, 80))
        cfg = YaSpMVConfig()
        rf = get_backend("faithful").execute(fmt, x, DEVICE, cfg)
        rv = get_backend("fast").execute(fmt, x, DEVICE, cfg)
        assert np.array_equal(rf.y, rv.y)
        assert np.array_equal(rf.y, _csr_fold(A, x))


class TestFaultDelegation:
    """Injected faults corrupt every backend identically."""

    @pytest.mark.parametrize("fmt_cls", FORMATS, ids=lambda c: c.__name__)
    @pytest.mark.parametrize("site", FAULT_SITES)
    def test_fault_identical_across_backends(self, corpus, fmt_cls, site):
        A = corpus["dense_rows_uniform"]
        fmt = fmt_cls.from_scipy(A)
        x = np.random.default_rng(13).standard_normal(A.shape[1])
        cfg = YaSpMVConfig()

        def run(backend_name):
            # Fresh plan per run: counts are consumed, seeds replay.
            plan = FaultPlan.single(site, seed=21, count=1)
            backend = get_backend(backend_name)
            with fault_scope(plan):
                try:
                    return backend.execute(fmt, x, DEVICE, cfg).y
                except ReproError as exc:
                    return type(exc).__name__

        ref = run("faithful")
        for other in ("fast", "auto"):
            got = run(other)
            if isinstance(ref, str):
                assert got == ref, f"{other} error mismatch on {site}"
            else:
                assert np.array_equal(ref, got, equal_nan=True), (
                    f"{other} drifted under {site}"
                )

    @pytest.mark.parametrize("fmt_cls", FORMATS, ids=lambda c: c.__name__)
    @pytest.mark.parametrize("site", FAULT_SITES)
    def test_fault_actually_fired(self, corpus, fmt_cls, site):
        # A site the kernel never visits would make the test above pass
        # vacuously; require the event (or a typed error) to show up.
        A = corpus["dense_rows_uniform"]
        fmt = fmt_cls.from_scipy(A)
        x = np.random.default_rng(13).standard_normal(A.shape[1])
        plan = FaultPlan.single(site, seed=21, count=1)
        clean = get_backend("faithful").execute(
            fmt, x, DEVICE, YaSpMVConfig()
        ).y
        with fault_scope(plan):
            try:
                y = get_backend("faithful").execute(
                    fmt, x, DEVICE, YaSpMVConfig()
                ).y
            except ReproError:
                y = None
        assert plan.events, f"{site} never fired for {fmt_cls.__name__}"
        if y is not None:
            assert not np.array_equal(clean, y, equal_nan=True), (
                f"{site} fired but left the output untouched"
            )
