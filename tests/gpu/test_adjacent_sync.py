"""Tests for the adjacent-synchronization model."""

import numpy as np
import pytest

from repro.gpu import (
    chain_carries,
    chain_carries_hazard,
    chain_segments,
    logical_workgroup_ids,
    propagation_delay,
)
from repro.scan import segmented_scan_inclusive


class TestChainCarries:
    def test_matches_sequential_spec(self, rng):
        lp = rng.standard_normal(30)
        hs = rng.random(30) < 0.5
        carry, grp = chain_carries(lp, hs)
        running = 0.0
        for x in range(30):
            assert carry[x] == pytest.approx(running)
            running = lp[x] if hs[x] else running + lp[x]
            assert grp[x] == pytest.approx(running)

    def test_is_segmented_scan(self, rng):
        # Grp_sum is an inclusive segmented scan whose segments restart
        # *at* each stop-carrying workgroup ("breaks such chained
        # updates and directly updates Grp_sum[X]").
        lp = rng.standard_normal(40)
        hs = rng.random(40) < 0.4
        _, grp = chain_carries(lp, hs)
        starts = hs.copy()
        starts[0] = True
        expected = segmented_scan_inclusive(lp, starts)
        np.testing.assert_allclose(grp, expected)

    def test_all_stops_identity(self, rng):
        lp = rng.standard_normal(10)
        carry, grp = chain_carries(lp, np.ones(10, dtype=bool))
        np.testing.assert_allclose(grp, lp)
        assert carry[0] == 0.0

    def test_no_stops_accumulates(self):
        lp = np.ones(5)
        carry, grp = chain_carries(lp, np.zeros(5, dtype=bool))
        np.testing.assert_allclose(grp, [1, 2, 3, 4, 5])
        np.testing.assert_allclose(carry, [0, 1, 2, 3, 4])

    def test_lanes(self, rng):
        lp = rng.standard_normal((12, 3))
        hs = rng.random(12) < 0.5
        carry, grp = chain_carries(lp, hs)
        for lane in range(3):
            c1, g1 = chain_carries(lp[:, lane], hs)
            np.testing.assert_allclose(carry[:, lane], c1)
            np.testing.assert_allclose(grp[:, lane], g1)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            chain_carries(np.zeros(3), np.zeros(4, dtype=bool))

    def test_empty_input(self):
        carry, grp = chain_carries(
            np.zeros((0,)), np.zeros(0, dtype=bool)
        )
        assert carry.shape == (0,) and grp.shape == (0,)

    def test_empty_lanes(self):
        carry, grp = chain_carries(
            np.zeros((0, 4)), np.zeros(0, dtype=bool)
        )
        assert carry.shape == (0, 4) and grp.shape == (0, 4)

    def test_giant_row_no_stops_lanes(self, rng):
        # One matrix row spanning every workgroup, 2-D lane input: the
        # chain is a plain prefix sum per lane.
        lp = rng.standard_normal((9, 2))
        carry, grp = chain_carries(lp, np.zeros(9, dtype=bool))
        np.testing.assert_allclose(grp, np.cumsum(lp, axis=0))
        np.testing.assert_allclose(carry[1:], np.cumsum(lp, axis=0)[:-1])


class TestChainSegments:
    def test_all_stops_unit_chains(self):
        chains = chain_segments(np.ones(10, dtype=bool))
        assert chains.max() == 1

    def test_no_stops_one_long_chain(self):
        chains = chain_segments(np.zeros(10, dtype=bool))
        assert chains.tolist() == [11]

    def test_mixed(self):
        hs = np.array([1, 0, 0, 1, 1, 0, 1], dtype=bool)
        chains = chain_segments(hs)
        assert sorted(chains.tolist()) == [2, 3]

    def test_empty(self):
        assert chain_segments(np.array([], dtype=bool)).size == 0

    def test_no_stops_conserves_total(self, rng):
        # Chain lengths partition n+1 "updates" however the stops fall.
        hs = rng.random(50) < 0.3
        if not hs.any():
            hs[-1] = True
        assert chain_segments(hs).sum() == 50 - hs.sum() + chain_segments(hs).size


class TestPropagationDelay:
    def test_no_delay_when_chain_matches_stagger(self):
        # Workgroups finish 1 time unit apart; hop latency far smaller:
        # every Grp_sum is ready before its consumer finishes.
        finish = np.arange(1, 11, dtype=float)
        hs = np.ones(10, dtype=bool)
        assert propagation_delay(finish, hs, 1e-3) == pytest.approx(0.0, abs=1e-2)

    def test_long_chain_adds_latency(self):
        # All finish simultaneously, but no workgroup has a stop: the
        # chain serializes all ten updates.
        finish = np.ones(10)
        hs = np.zeros(10, dtype=bool)
        delay = propagation_delay(finish, hs, 0.5)
        assert delay == pytest.approx(0.5 * 9)

    def test_stops_break_the_chain(self):
        finish = np.ones(10)
        broken = propagation_delay(finish, np.ones(10, dtype=bool), 0.5)
        unbroken = propagation_delay(finish, np.zeros(10, dtype=bool), 0.5)
        assert broken < unbroken

    def test_non_negative(self, rng):
        finish = np.sort(rng.uniform(0, 1, 20))
        hs = rng.random(20) < 0.5
        assert propagation_delay(finish, hs, 1e-4) >= 0.0

    def test_empty_input(self):
        assert propagation_delay(
            np.zeros(0), np.zeros(0, dtype=bool), 0.5
        ) == 0.0

    def test_single_workgroup_no_chain(self):
        assert propagation_delay(np.array([3.0]), np.ones(1, dtype=bool), 0.5) == 0.0


class TestLogicalWorkgroupIds:
    def test_inverse_of_arrival_order(self, rng):
        order = rng.permutation(12)
        logical = logical_workgroup_ids(order)
        # The k-th arriver (physical id order[k]) acquires logical id k.
        np.testing.assert_array_equal(logical[order], np.arange(12))

    def test_identity_arrival(self):
        np.testing.assert_array_equal(
            logical_workgroup_ids(np.arange(5)), np.arange(5)
        )

    def test_empty(self):
        assert logical_workgroup_ids(np.array([], dtype=np.int64)).size == 0

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            logical_workgroup_ids(np.array([0, 0, 2]))
        with pytest.raises(ValueError):
            logical_workgroup_ids(np.array([1, 2, 3]))


class TestChainCarriesHazard:
    def test_no_hazards_matches_exact(self, rng):
        lp = rng.standard_normal(25)
        hs = rng.random(25) < 0.4
        c0, g0 = chain_carries(lp, hs)
        c1, g1 = chain_carries_hazard(lp, hs)
        np.testing.assert_array_equal(c0, c1)
        np.testing.assert_array_equal(g0, g1)

    def test_identity_arrival_matches_exact(self, rng):
        lp = rng.standard_normal((18, 2))
        hs = rng.random(18) < 0.4
        c0, g0 = chain_carries(lp, hs)
        c1, g1 = chain_carries_hazard(lp, hs, arrival_order=np.arange(18))
        np.testing.assert_array_equal(c0, c1)
        np.testing.assert_array_equal(g0, g1)

    def test_stale_read_sees_initialization_value(self):
        # wg1 continues wg0's segment; a stale read loses wg0's partial.
        lp = np.array([1.0, 10.0, 100.0])
        hs = np.array([False, False, True])
        stale = np.array([False, True, False])
        carry, _ = chain_carries_hazard(lp, hs, stale_reads=stale)
        assert carry[1] == 0.0  # should have been 1.0
        c_exact, _ = chain_carries(lp, hs)
        assert c_exact[1] == 1.0

    def test_out_of_order_arrival_reads_unpublished_slot(self):
        # wg2 arrives before wg1 has published: its carry is stale 0.
        lp = np.array([1.0, 2.0, 4.0])
        hs = np.zeros(3, dtype=bool)
        carry, _ = chain_carries_hazard(
            lp, hs, arrival_order=np.array([0, 2, 1])
        )
        assert carry[2] == 0.0
        c_exact, _ = chain_carries(lp, hs)
        assert c_exact[2] == 3.0

    def test_logical_id_remap_absorbs_disorder(self, rng):
        # The section 3.2.4 fallback: remap tiles through logical ids so
        # the chain is traversed in arrival order -- the result (indexed
        # back to physical tiles) matches the exact chain on the
        # logically-ordered data.
        lp = rng.standard_normal(10)
        hs = rng.random(10) < 0.5
        order = rng.permutation(10)
        logical = logical_workgroup_ids(order)
        # Physical wg p works on tile logical[p]; equivalently the chain
        # processes tiles order[0], order[1], ... in sequence.
        c_repaired, _ = chain_carries_hazard(
            lp[order], hs[order], arrival_order=logical[order]
        )
        c_exact, _ = chain_carries(lp[order], hs[order])
        np.testing.assert_array_equal(c_repaired, c_exact)

    def test_hazard_on_stop_workgroup_is_harmless_for_grp_sum(self):
        # A stop-carrying workgroup publishes its own partial regardless
        # of what it read; only its carry-in (first segment) is wrong.
        lp = np.array([1.0, 5.0])
        hs = np.array([False, True])
        _, grp = chain_carries_hazard(
            lp, hs, stale_reads=np.array([False, True])
        )
        assert grp[1] == 5.0

    def test_empty(self):
        carry, grp = chain_carries_hazard(np.zeros(0), np.zeros(0, dtype=bool))
        assert carry.size == 0 and grp.size == 0


class TestSpinWatchdog:
    def test_unpublished_predecessor_trips_timeout(self):
        from repro.errors import AdjacentSyncTimeout

        # wg2 arrives before wg1 has published; with the watchdog armed
        # the bounded spin expires instead of reading a stale 0.
        lp = np.array([1.0, 2.0, 4.0])
        hs = np.zeros(3, dtype=bool)
        with pytest.raises(AdjacentSyncTimeout) as exc:
            chain_carries_hazard(
                lp, hs, arrival_order=np.array([0, 2, 1]), max_spin=64
            )
        assert exc.value.workgroup == 2
        assert exc.value.spins == 64

    def test_default_keeps_silent_stale_semantics(self):
        # max_spin=None (the legacy default) models the silent stale
        # read -- no exception, carry is the initialization value.
        lp = np.array([1.0, 2.0, 4.0])
        hs = np.zeros(3, dtype=bool)
        carry, _ = chain_carries_hazard(
            lp, hs, arrival_order=np.array([0, 2, 1])
        )
        assert carry[2] == 0.0

    def test_stale_read_does_not_trip_watchdog(self):
        # Delayed visibility slips PAST the spin loop: the predecessor
        # did publish, so the watchdog has nothing to wait on and the
        # stale value is read silently even with the watchdog armed.
        lp = np.array([1.0, 10.0, 100.0])
        hs = np.array([False, False, True])
        carry, _ = chain_carries_hazard(
            lp, hs, stale_reads=np.array([False, True, False]), max_spin=64
        )
        assert carry[1] == 0.0

    def test_in_order_arrival_never_trips(self, rng):
        lp = rng.standard_normal(20)
        hs = rng.random(20) < 0.4
        c0, g0 = chain_carries(lp, hs)
        c1, g1 = chain_carries_hazard(lp, hs, max_spin=1)
        np.testing.assert_array_equal(c0, c1)
        np.testing.assert_array_equal(g0, g1)

    def test_timeout_counted(self):
        from repro.errors import AdjacentSyncTimeout
        from repro.obs import Observer, obs_scope

        lp = np.array([1.0, 2.0, 4.0])
        hs = np.zeros(3, dtype=bool)
        obs = Observer()
        with obs_scope(obs):
            with pytest.raises(AdjacentSyncTimeout):
                chain_carries_hazard(
                    lp, hs, arrival_order=np.array([0, 2, 1]), max_spin=8
                )
        assert obs.metrics.get("watchdog.timeouts").value() == 1

    def test_logical_id_remap_avoids_timeout(self, rng):
        # The paper's repair: traverse in arrival order via logical ids;
        # every predecessor is then published before it is read, so the
        # armed watchdog never fires.
        lp = rng.standard_normal(12)
        hs = rng.random(12) < 0.5
        order = rng.permutation(12)
        logical = logical_workgroup_ids(order)
        c, _ = chain_carries_hazard(
            lp[order], hs[order], arrival_order=logical[order], max_spin=8
        )
        c_exact, _ = chain_carries(lp[order], hs[order])
        np.testing.assert_array_equal(c, c_exact)
