"""Tests for the adjacent-synchronization model."""

import numpy as np
import pytest

from repro.gpu import chain_carries, chain_segments, propagation_delay
from repro.scan import segmented_scan_inclusive


class TestChainCarries:
    def test_matches_sequential_spec(self, rng):
        lp = rng.standard_normal(30)
        hs = rng.random(30) < 0.5
        carry, grp = chain_carries(lp, hs)
        running = 0.0
        for x in range(30):
            assert carry[x] == pytest.approx(running)
            running = lp[x] if hs[x] else running + lp[x]
            assert grp[x] == pytest.approx(running)

    def test_is_segmented_scan(self, rng):
        # Grp_sum is an inclusive segmented scan whose segments restart
        # *at* each stop-carrying workgroup ("breaks such chained
        # updates and directly updates Grp_sum[X]").
        lp = rng.standard_normal(40)
        hs = rng.random(40) < 0.4
        _, grp = chain_carries(lp, hs)
        starts = hs.copy()
        starts[0] = True
        expected = segmented_scan_inclusive(lp, starts)
        np.testing.assert_allclose(grp, expected)

    def test_all_stops_identity(self, rng):
        lp = rng.standard_normal(10)
        carry, grp = chain_carries(lp, np.ones(10, dtype=bool))
        np.testing.assert_allclose(grp, lp)
        assert carry[0] == 0.0

    def test_no_stops_accumulates(self):
        lp = np.ones(5)
        carry, grp = chain_carries(lp, np.zeros(5, dtype=bool))
        np.testing.assert_allclose(grp, [1, 2, 3, 4, 5])
        np.testing.assert_allclose(carry, [0, 1, 2, 3, 4])

    def test_lanes(self, rng):
        lp = rng.standard_normal((12, 3))
        hs = rng.random(12) < 0.5
        carry, grp = chain_carries(lp, hs)
        for lane in range(3):
            c1, g1 = chain_carries(lp[:, lane], hs)
            np.testing.assert_allclose(carry[:, lane], c1)
            np.testing.assert_allclose(grp[:, lane], g1)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            chain_carries(np.zeros(3), np.zeros(4, dtype=bool))


class TestChainSegments:
    def test_all_stops_unit_chains(self):
        chains = chain_segments(np.ones(10, dtype=bool))
        assert chains.max() == 1

    def test_no_stops_one_long_chain(self):
        chains = chain_segments(np.zeros(10, dtype=bool))
        assert chains.tolist() == [11]

    def test_mixed(self):
        hs = np.array([1, 0, 0, 1, 1, 0, 1], dtype=bool)
        chains = chain_segments(hs)
        assert sorted(chains.tolist()) == [2, 3]

    def test_empty(self):
        assert chain_segments(np.array([], dtype=bool)).size == 0


class TestPropagationDelay:
    def test_no_delay_when_chain_matches_stagger(self):
        # Workgroups finish 1 time unit apart; hop latency far smaller:
        # every Grp_sum is ready before its consumer finishes.
        finish = np.arange(1, 11, dtype=float)
        hs = np.ones(10, dtype=bool)
        assert propagation_delay(finish, hs, 1e-3) == pytest.approx(0.0, abs=1e-2)

    def test_long_chain_adds_latency(self):
        # All finish simultaneously, but no workgroup has a stop: the
        # chain serializes all ten updates.
        finish = np.ones(10)
        hs = np.zeros(10, dtype=bool)
        delay = propagation_delay(finish, hs, 0.5)
        assert delay == pytest.approx(0.5 * 9)

    def test_stops_break_the_chain(self):
        finish = np.ones(10)
        broken = propagation_delay(finish, np.ones(10, dtype=bool), 0.5)
        unbroken = propagation_delay(finish, np.zeros(10, dtype=bool), 0.5)
        assert broken < unbroken

    def test_non_negative(self, rng):
        finish = np.sort(rng.uniform(0, 1, 20))
        hs = rng.random(20) < 0.5
        assert propagation_delay(finish, hs, 1e-4) >= 0.0
