"""Tests for the texture-cache models."""

import numpy as np
import pytest

from repro.gpu import LRUCache, vector_read_traffic, windowed_miss_estimate


class TestLRUCache:
    def test_cold_misses(self):
        c = LRUCache(4)
        for i in range(4):
            assert not c.access(i)
        assert c.misses == 4 and c.hits == 0

    def test_hits_on_reuse(self):
        c = LRUCache(4)
        c.run(np.array([0, 1, 2, 0, 1, 2]))
        assert c.hits == 3

    def test_eviction_order_is_lru(self):
        c = LRUCache(2)
        c.access(0)
        c.access(1)
        c.access(0)  # 1 is now LRU
        c.access(2)  # evicts 1
        assert c.access(0)  # still resident
        assert not c.access(1)  # was evicted

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestWindowedEstimate:
    def test_matches_lru_on_streaming(self):
        # Pure streaming: both models report one miss per line.
        stream = np.arange(10_000)
        assert windowed_miss_estimate(stream, 512) == 10_000
        lru = LRUCache(512)
        lru.run(stream)
        assert lru.misses == 10_000

    def test_close_to_lru_on_loopy_stream(self, rng):
        stream = np.concatenate(
            [np.tile(np.arange(100), 10), rng.integers(0, 5000, 3000)]
        )
        est = windowed_miss_estimate(stream, 512)
        lru = LRUCache(512)
        lru.run(stream)
        assert est == pytest.approx(lru.misses, rel=0.25)

    def test_tiny_reuse_window_hits(self):
        stream = np.repeat(np.arange(100), 8)  # immediate reuse
        assert windowed_miss_estimate(stream, 512) <= 110

    def test_zero_capacity_all_miss(self):
        assert windowed_miss_estimate(np.arange(10), 0) == 10

    def test_empty(self):
        assert windowed_miss_estimate(np.array([], dtype=np.int64), 16) == 0


class TestVectorReadTraffic:
    def test_conservation(self, rng):
        idx = rng.integers(0, 4096, 2000)
        dram, cached = vector_read_traffic(idx, 4, 48 * 1024, 32)
        assert dram >= 0 and cached >= 0
        # Cached bytes never exceed total requested bytes.
        assert cached <= idx.size * 4

    def test_local_stream_mostly_cached(self):
        idx = np.repeat(np.arange(64), 50)  # heavy reuse of 64 elements
        dram, cached = vector_read_traffic(idx, 4, 48 * 1024, 32)
        assert cached > dram

    def test_scattered_stream_mostly_dram(self, rng):
        idx = rng.integers(0, 10_000_000, 5000)
        dram, cached = vector_read_traffic(idx, 4, 12 * 1024, 32)
        assert dram > cached

    def test_no_cache_worse_or_equal(self, rng):
        idx = rng.integers(0, 100_000, 5000)
        with_cache, _ = vector_read_traffic(idx, 4, 48 * 1024, 32, use_cache=True)
        without, _ = vector_read_traffic(idx, 4, 48 * 1024, 32, use_cache=False)
        assert without >= with_cache

    def test_slicing_improves_locality(self, rng):
        # The BCCOO+ mechanism: the same accesses grouped by slice touch
        # fewer distinct lines per reuse window.
        n = 20_000
        cols = rng.integers(0, 65536, n)
        interleaved = cols
        sliced = np.sort(cols) // 1  # grouping by value = extreme slicing
        d_inter, _ = vector_read_traffic(interleaved, 4, 12 * 1024, 32)
        d_sliced, _ = vector_read_traffic(sliced, 4, 12 * 1024, 32)
        assert d_sliced < d_inter

    def test_empty(self):
        assert vector_read_traffic(np.array([], dtype=np.int64), 4, 1024, 32) == (0, 0)
