"""Tests for device descriptors and occupancy."""

import pytest

from repro.errors import DeviceError
from repro.gpu import GTX480, GTX680, available_devices, get_device


class TestRegistry:
    def test_lookup(self):
        assert get_device("gtx680") is GTX680
        assert get_device("GTX480") is GTX480

    def test_unknown(self):
        with pytest.raises(DeviceError, match="unknown device"):
            get_device("h100")

    def test_available(self):
        devs = available_devices()
        assert set(devs) == {"gtx480", "gtx680"}


class TestSpecs:
    def test_paper_devices_flop_byte_ratio(self):
        # The paper's argument: Kepler has ~2x the FLOPs per byte, so
        # bandwidth savings matter more on GTX680.
        assert GTX680.flop_byte_ratio > 1.9 * GTX480.flop_byte_ratio

    def test_total_cores(self):
        assert GTX480.total_cores == 480
        assert GTX680.total_cores == 1536

    def test_effective_bandwidth_below_peak(self):
        for dev in (GTX480, GTX680):
            assert dev.effective_bandwidth < dev.dram_bandwidth

    def test_with_overrides(self):
        fast = GTX680.with_overrides(dram_bandwidth=400e9)
        assert fast.dram_bandwidth == 400e9
        assert fast.num_sms == GTX680.num_sms
        assert GTX680.dram_bandwidth != 400e9  # original untouched


class TestOccupancy:
    def test_thread_budget_limits(self):
        # 2048 threads / 512 per wg = 4 concurrent on GTX680.
        assert GTX680.max_concurrent_workgroups(512) == 4

    def test_slot_budget_limits(self):
        # Small workgroups hit the workgroup-slot cap, not threads.
        assert GTX680.max_concurrent_workgroups(64) == 16
        assert GTX480.max_concurrent_workgroups(64) == 8

    def test_shared_memory_limits(self):
        # 24 KB per workgroup: only 2 fit in 48 KB.
        assert GTX680.max_concurrent_workgroups(64, 24 * 1024) == 2

    def test_oversized_workgroup(self):
        with pytest.raises(DeviceError, match="workgroup size"):
            GTX680.max_concurrent_workgroups(2048)

    def test_oversized_shared_memory(self):
        with pytest.raises(DeviceError, match="shared memory"):
            GTX680.max_concurrent_workgroups(64, 64 * 1024)


class TestRegisterOccupancy:
    def test_register_file_limits(self):
        from repro.gpu import GTX480

        # 32768 regs/SM, 256 threads x 63 regs = 16128/wg -> 2 concurrent.
        assert GTX480.max_concurrent_workgroups(256, 0, 63) == 2

    def test_zero_means_unconstrained(self):
        from repro.gpu import GTX680

        assert GTX680.max_concurrent_workgroups(
            256, 0, 0
        ) == GTX680.max_concurrent_workgroups(256)

    def test_kepler_bigger_register_file(self):
        from repro.gpu import GTX480, GTX680

        assert GTX680.max_concurrent_workgroups(
            256, 0, 40
        ) > GTX480.max_concurrent_workgroups(256, 0, 40)
