"""Tests for the workgroup dispatch model."""

import numpy as np
import pytest

from repro.gpu import schedule_workgroups


class TestScheduling:
    def test_uniform_work_balances(self):
        res = schedule_workgroups(np.ones(64), num_sms=8, max_concurrent_per_sm=1)
        assert res.imbalance_factor == pytest.approx(1.0)
        assert res.makespan == pytest.approx(8.0)

    def test_single_heavy_workgroup_dominates(self):
        costs = np.ones(64)
        costs[0] = 100.0
        res = schedule_workgroups(costs, num_sms=8)
        assert res.makespan == pytest.approx(100.0)
        assert res.imbalance_factor > 4.0

    def test_fewer_workgroups_than_slots(self):
        res = schedule_workgroups(np.array([3.0, 1.0]), num_sms=8)
        assert res.makespan == 3.0
        assert res.start.tolist() == [0.0, 0.0]

    def test_in_order_starts(self, rng):
        costs = rng.uniform(0.5, 2.0, 100)
        res = schedule_workgroups(costs, num_sms=4, max_concurrent_per_sm=2)
        # In-order dispatch: start times are non-decreasing in id.
        assert (np.diff(res.start) >= -1e-12).all()

    def test_concurrency_helps(self):
        costs = np.ones(64)
        serial = schedule_workgroups(costs, num_sms=4, max_concurrent_per_sm=1)
        parallel = schedule_workgroups(costs, num_sms=4, max_concurrent_per_sm=4)
        assert parallel.makespan < serial.makespan

    def test_makespan_bounds(self, rng):
        costs = rng.uniform(0.1, 5.0, 200)
        res = schedule_workgroups(costs, num_sms=8)
        assert res.makespan >= res.balanced_lower_bound
        assert res.makespan >= costs.max()
        assert res.makespan <= costs.sum()

    def test_empty(self):
        res = schedule_workgroups(np.empty(0), num_sms=8)
        assert res.makespan == 0.0
        assert res.imbalance_factor == 1.0

    def test_finish_consistency(self, rng):
        costs = rng.uniform(0.1, 2.0, 50)
        res = schedule_workgroups(costs, num_sms=3)
        np.testing.assert_allclose(res.finish - res.start, costs)
