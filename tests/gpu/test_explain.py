"""Tests for the cost-explanation report."""

import numpy as np
import pytest

from repro.gpu import GTX680, KernelStats, TimingModel


@pytest.fixture
def stats():
    return KernelStats(
        flops=2e6,
        dram_read_bytes=10e6,
        dram_write_bytes=1e6,
        cached_read_bytes=2e6,
        workgroup_size=256,
        n_workgroups=50,
        barriers_per_workgroup=3.0,
        atomics=50,
        n_launches=2,
    )


class TestExplain:
    def test_contains_all_components(self, stats):
        text = TimingModel(GTX680).explain(stats)
        for needle in (
            "memory term",
            "cache term",
            "compute term",
            "launches",
            "synchronization",
            "MB read",
            "2 kernel(s)",
            "50 atomics",
        ):
            assert needle in text, needle

    def test_gflops_shown_with_nnz(self, stats):
        text = TimingModel(GTX680).explain(stats, nnz=1_000_000)
        assert "GFLOPS" in text

    def test_bound_label_matches_estimate(self, stats):
        tm = TimingModel(GTX680)
        br = tm.estimate(stats)
        assert f"{br.bound}-bound" in tm.explain(stats)

    def test_imbalance_annotated_when_present(self):
        w = np.ones(50)
        w[0] = 40.0
        st = KernelStats(
            flops=1e6,
            dram_read_bytes=5e6,
            workgroup_size=256,
            n_workgroups=50,
            workgroup_work=w,
        )
        text = TimingModel(GTX680).explain(st)
        assert "imbalance x" in text

    def test_fp64_flagged(self):
        st = KernelStats(flops=1e6, dram_read_bytes=1e6, fp64=True)
        assert "fp64" in TimingModel(GTX680).explain(st)

    def test_percentages_roughly_sum(self, stats):
        text = TimingModel(GTX680).explain(stats)
        pcts = [
            float(tok.rstrip("%"))
            for line in text.splitlines()
            for tok in line.split()
            if tok.endswith("%")
        ]
        assert sum(pcts) == pytest.approx(100.0, abs=2.0)
