"""Tests for the coalescing model."""

import numpy as np
import pytest

from repro.gpu import (
    gather_transactions,
    stream_bytes,
    strided_stream_transactions,
    warp_transactions,
)


class TestWarpTransactions:
    def test_fully_coalesced(self):
        addr = (np.arange(32) * 4).reshape(1, 32)
        assert warp_transactions(addr).tolist() == [1]

    def test_fully_scattered(self):
        addr = (np.arange(32) * 128).reshape(1, 32)
        assert warp_transactions(addr).tolist() == [32]

    def test_two_segments(self):
        addr = np.concatenate([np.arange(16) * 4, 4096 + np.arange(16) * 4])
        assert warp_transactions(addr.reshape(1, 32)).tolist() == [2]

    def test_inactive_lanes_free(self):
        addr = np.full((1, 32), -1, dtype=np.int64)
        addr[0, 0] = 0
        assert warp_transactions(addr).tolist() == [1]
        assert warp_transactions(np.full((1, 32), -1, dtype=np.int64)).tolist() == [0]

    def test_duplicate_addresses_merge(self):
        addr = np.zeros((1, 32), dtype=np.int64)
        assert warp_transactions(addr).tolist() == [1]

    def test_multiple_warps(self):
        a0 = np.arange(32) * 4
        a1 = np.arange(32) * 256
        out = warp_transactions(np.stack([a0, a1]))
        assert out.tolist() == [1, 32]

    def test_transaction_size_parameter(self):
        addr = (np.arange(32) * 4).reshape(1, 32)
        assert warp_transactions(addr, transaction_bytes=32).tolist() == [4]

    def test_bad_shape(self):
        with pytest.raises(ValueError, match="n_warps"):
            warp_transactions(np.arange(32))


class TestGatherTransactions:
    def test_sequential_gather(self):
        assert gather_transactions(np.arange(64), 4) == 2

    def test_random_gather_upper_bound(self, rng):
        idx = rng.integers(0, 1_000_000, 320)
        txns = gather_transactions(idx, 4)
        assert txns <= 320
        assert txns >= 320 // 32  # at least one per warp

    def test_partial_warp_padded(self):
        assert gather_transactions(np.arange(10), 4) == 1

    def test_empty(self):
        assert gather_transactions(np.array([], dtype=np.int64), 4) == 0


class TestStreamBytes:
    def test_rounds_to_transactions(self):
        assert stream_bytes(1, 4) == 128
        assert stream_bytes(32, 4) == 128
        assert stream_bytes(33, 4) == 256

    def test_zero(self):
        assert stream_bytes(0, 4) == 0


class TestStridedStream:
    def test_unit_stride_is_stream(self):
        assert strided_stream_transactions(256, 4, 1) == stream_bytes(256, 4) // 128

    def test_large_stride_one_per_lane(self):
        # Stride 64 elements x 4 B = 256 B apart: every lane its own txn.
        assert strided_stream_transactions(32, 4, 64) == 32

    def test_monotone_in_stride(self):
        t = [strided_stream_transactions(1024, 4, s) for s in (1, 2, 4, 8, 32)]
        assert t == sorted(t)

    def test_zero_elements(self):
        assert strided_stream_transactions(0, 4, 8) == 0
