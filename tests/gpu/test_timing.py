"""Tests for the analytical timing model."""

import numpy as np
import pytest

from repro.gpu import GTX480, GTX680, KernelStats, TimingModel


def _stats(**kw):
    base = dict(
        flops=2e6,
        dram_read_bytes=10e6,
        dram_write_bytes=1e6,
        workgroup_size=256,
        n_workgroups=100,
        n_launches=1,
    )
    base.update(kw)
    return KernelStats(**base)


class TestMonotonicity:
    def test_more_bytes_more_time(self):
        tm = TimingModel(GTX680)
        t1 = tm.estimate(_stats(dram_read_bytes=10e6)).t_total
        t2 = tm.estimate(_stats(dram_read_bytes=20e6)).t_total
        assert t2 > t1

    def test_more_launches_more_time(self):
        tm = TimingModel(GTX680)
        t1 = tm.estimate(_stats(n_launches=1)).t_total
        t2 = tm.estimate(_stats(n_launches=2)).t_total
        assert t2 == pytest.approx(t1 + GTX680.kernel_launch_s)

    def test_cached_cheaper_than_dram(self):
        tm = TimingModel(GTX680)
        t_dram = tm.estimate(_stats(dram_read_bytes=20e6)).t_total
        t_cache = tm.estimate(
            _stats(dram_read_bytes=10e6, cached_read_bytes=10e6)
        ).t_total
        assert t_cache < t_dram

    def test_low_simd_efficiency_can_flip_to_compute_bound(self):
        tm = TimingModel(GTX680)
        good = tm.estimate(_stats(flops=2e9, simd_efficiency=1.0))
        bad = tm.estimate(_stats(flops=2e9, simd_efficiency=0.02))
        assert bad.t_total > good.t_total
        assert bad.bound == "compute"

    def test_imbalanced_work_slower(self):
        tm = TimingModel(GTX680)
        even = tm.estimate(_stats(workgroup_work=np.ones(100)))
        w = np.ones(100)
        w[0] = 50.0
        skewed = tm.estimate(_stats(workgroup_work=w))
        assert skewed.imbalance_factor > 1.5
        assert skewed.t_total > even.t_total

    def test_atomics_add_time(self):
        tm = TimingModel(GTX680)
        t0 = tm.estimate(_stats()).t_total
        t1 = tm.estimate(_stats(atomics=10_000)).t_total
        assert t1 > t0

    def test_long_sync_chain_adds_time(self):
        tm = TimingModel(GTX680)
        short = tm.estimate(
            _stats(sync_chain_lengths=np.ones(100, dtype=np.int64))
        ).t_total
        long = tm.estimate(
            _stats(sync_chain_lengths=np.array([100], dtype=np.int64))
        ).t_total
        assert long >= short


class TestSanity:
    def test_memory_bound_spmv(self):
        # A typical SpMV profile must be memory-bound on both devices.
        for dev in (GTX480, GTX680):
            br = TimingModel(dev).estimate(_stats())
            assert br.bound == "memory"

    def test_gflops_metric(self):
        br = TimingModel(GTX680).estimate(_stats())
        nnz = 1_000_000
        assert br.gflops(nnz) == pytest.approx(2 * nnz / br.t_total / 1e9)

    def test_breakdown_adds_up(self):
        br = TimingModel(GTX680).estimate(_stats(extra_latency_s=1e-5))
        assert br.t_total == pytest.approx(
            br.t_exec + br.t_launch + br.t_sync + 1e-5
        )

    def test_kepler_faster_on_bandwidth_bound(self):
        # Slightly higher bandwidth: GTX680 should edge out GTX480 on a
        # purely bandwidth-bound profile.
        s = _stats()
        t680 = TimingModel(GTX680).estimate(s).t_total
        t480 = TimingModel(GTX480).estimate(s).t_total
        assert t680 < t480


class TestImbalanceFactor:
    def test_uniform_is_one(self):
        assert _stats(workgroup_work=np.ones(50)).imbalance_factor() == 1.0

    def test_none_is_one(self):
        assert _stats().imbalance_factor() == 1.0

    def test_sequential_merge(self):
        a = _stats(dram_read_bytes=20e6, n_launches=1)
        b = _stats(dram_read_bytes=1e6, n_launches=1, atomics=5)
        merged = a.sequential(b)
        assert merged.dram_read_bytes == 21e6
        assert merged.n_launches == 2
        assert merged.atomics == 5
        # Geometry follows the dominant (larger-traffic) kernel.
        assert merged.workgroup_size == a.workgroup_size


class TestKernelStatsEdges:
    def test_max_sync_chain_empty(self):
        assert _stats().max_sync_chain == 0

    def test_max_sync_chain(self):
        st = _stats(sync_chain_lengths=np.array([3, 7, 1], dtype=np.int64))
        assert st.max_sync_chain == 7

    def test_imbalance_empty_array(self):
        st = _stats(workgroup_work=np.empty(0))
        assert st.imbalance_factor() == 1.0

    def test_imbalance_zero_mean(self):
        st = _stats(workgroup_work=np.zeros(5))
        assert st.imbalance_factor() == 1.0

    def test_sequential_keeps_chains_from_either(self):
        a = _stats(sync_chain_lengths=np.array([4], dtype=np.int64))
        b = _stats()
        assert a.sequential(b).max_sync_chain == 4
        assert b.sequential(a).max_sync_chain == 4

    def test_register_occupancy_changes_scheduling(self):
        # Register pressure feeds the occupancy used by the dispatch
        # model: the imbalance factor must respond to it.
        w = np.ones(64)
        w[:4] = 20.0
        lean = TimingModel(GTX680).estimate(
            _stats(workgroup_work=w, registers_per_thread=16)
        )
        hungry = TimingModel(GTX680).estimate(
            _stats(workgroup_work=w, registers_per_thread=63)
        )
        assert hungry.imbalance_factor != lean.imbalance_factor
