"""Edge cases and failure injection across the whole pipeline.

Degenerate shapes, pathological values, and deliberately corrupted
structures: the library must either compute exactly or fail loudly --
never return silently wrong results.
"""

import numpy as np
import pytest
from scipy import sparse

from repro import SpMVEngine
from repro.errors import FormatError
from repro.formats import BCCOOMatrix, BCCOOPlusMatrix
from repro.gpu import GTX680
from repro.kernels import YaSpMVConfig, YaSpMVKernel
from repro.tuning import TuningPoint

KERNEL = YaSpMVKernel()
SMALL = YaSpMVConfig(workgroup_size=32, tile_size=2)


def _check(A, rng, cfg=SMALL, **fmt_kw):
    fmt = BCCOOMatrix.from_scipy(A, **fmt_kw)
    x = rng.standard_normal(A.shape[1])
    res = KERNEL.run(fmt, x, GTX680, config=cfg)
    np.testing.assert_allclose(res.y, A @ x, atol=1e-9)


class TestDegenerateShapes:
    def test_single_row(self, rng):
        _check(sparse.random(1, 500, density=0.3, random_state=0, format="csr"), rng)

    def test_single_column(self, rng):
        _check(sparse.random(500, 1, density=0.3, random_state=0, format="csr"), rng)

    def test_one_by_one(self, rng):
        _check(sparse.csr_matrix(np.array([[3.5]])), rng)

    def test_single_nonzero_in_corner(self, rng):
        A = sparse.csr_matrix(
            (np.array([2.0]), (np.array([99]), np.array([99]))), shape=(100, 100)
        )
        _check(A, rng, block_height=4, block_width=4)

    def test_extreme_aspect_ratio(self, rng):
        _check(sparse.random(3, 50_000, density=0.001, random_state=1, format="csr"), rng)

    def test_last_row_and_column_only(self, rng):
        # Exercises the padded-block edge clamping on both axes.
        n = 33  # deliberately not a multiple of any block size
        A = sparse.csr_matrix(
            (np.ones(2), (np.array([n - 1, 0]), np.array([0, n - 1]))),
            shape=(n, n),
        )
        for h, w in [(2, 2), (4, 4), (3, 2)]:
            _check(A, rng, block_height=h, block_width=w)


class TestPathologicalValues:
    def test_huge_and_tiny_magnitudes(self, rng):
        A = sparse.random(60, 60, density=0.1, random_state=2, format="csr")
        A.data *= 10.0 ** rng.integers(-150, 150, size=A.nnz)
        _check(A, rng)

    def test_exact_cancellation(self, rng):
        # +v and -v in one row: the segmented sum must cancel exactly.
        A = sparse.csr_matrix(
            (np.array([1e10, -1e10, 1.0]), (np.array([0, 0, 0]), np.array([0, 1, 2]))),
            shape=(1, 3),
        )
        fmt = BCCOOMatrix.from_scipy(A)
        y = KERNEL.run(fmt, np.ones(3), GTX680, config=SMALL).y
        assert y[0] == 1.0

    def test_negative_values_round_trip(self, rng):
        A = sparse.random(50, 50, density=0.2, random_state=3, format="csr")
        A.data = -np.abs(A.data)
        fmt = BCCOOMatrix.from_scipy(A, block_height=2, block_width=2)
        assert (fmt.to_scipy() != A).nnz == 0

    def test_inf_and_nan_propagate(self):
        # IEEE semantics must survive the kernel path (no masking bugs).
        A = sparse.csr_matrix(np.array([[np.inf, 0.0], [0.0, 1.0]]))
        fmt = BCCOOMatrix.from_scipy(A)
        y = KERNEL.run(fmt, np.array([1.0, 1.0]), GTX680, config=SMALL).y
        assert np.isinf(y[0]) and y[1] == 1.0


class TestCorruptionDetection:
    def test_truncated_values_rejected(self, random_matrix):
        fmt = BCCOOMatrix.from_scipy(random_matrix())
        with pytest.raises(FormatError):
            BCCOOMatrix(
                fmt.shape,
                fmt.block_height,
                fmt.block_width,
                fmt.flags,
                fmt.col_block,
                fmt.values[:-1],  # truncated
                fmt.nonempty_block_rows,
                fmt.col_storage,
                fmt.delta,
                fmt.nnz,
            )

    def test_flag_row_map_mismatch_rejected(self, random_matrix):
        fmt = BCCOOMatrix.from_scipy(random_matrix())
        bad_map = np.concatenate([fmt.nonempty_block_rows, [10**6]])
        with pytest.raises(FormatError, match="row stops"):
            BCCOOMatrix(
                fmt.shape,
                fmt.block_height,
                fmt.block_width,
                fmt.flags,
                fmt.col_block,
                fmt.values,
                bad_map,
                fmt.col_storage,
                fmt.delta,
                fmt.nnz,
            )

    def test_delta_missing_payload_rejected(self, random_matrix):
        fmt = BCCOOMatrix.from_scipy(random_matrix(ncols=100))
        with pytest.raises(FormatError, match="delta"):
            BCCOOMatrix(
                fmt.shape,
                fmt.block_height,
                fmt.block_width,
                fmt.flags,
                fmt.col_block,
                fmt.values,
                fmt.nonempty_block_rows,
                "delta",
                None,
                fmt.nnz,
            )


class TestEngineEdges:
    def test_diagonal_identity(self, rng):
        A = sparse.identity(257, format="csr")
        eng = SpMVEngine(GTX680)
        prep = eng.prepare(A, point=TuningPoint())
        x = rng.standard_normal(257)
        np.testing.assert_allclose(eng.multiply(prep, x).y, x)

    def test_plus_with_empty_right_half(self, rng):
        A = sparse.random(40, 200, density=0.1, random_state=4, format="csr").tolil()
        A[:, 100:] = 0
        A = A.tocsr()
        A.eliminate_zeros()
        fmt = BCCOOPlusMatrix.from_scipy(A, slice_count=8)
        x = rng.standard_normal(200)
        res = KERNEL.run(fmt, x, GTX680, config=SMALL)
        np.testing.assert_allclose(res.y, A @ x, atol=1e-10)

    def test_dense_column_matrix(self, rng):
        # Every row hits the same single column: one giant vector reuse.
        n = 400
        A = sparse.csr_matrix(
            (np.ones(n), (np.arange(n), np.zeros(n, dtype=int))), shape=(n, n)
        )
        _check(A, rng)
