"""Integration tests: the full pipeline on suite matrices and solvers."""

import numpy as np
import pytest
from scipy import sparse

from repro import SpMVEngine
from repro.core import (
    run_clspmv_best_single,
    run_clspmv_cocktail,
    run_cusp,
    run_cusparse_best,
)
from repro.gpu import GTX480, GTX680
from repro.matrices import load_matrix
from repro.tuning import TuningPoint

MINI_SUITE = ["QCD", "Circuit", "Economics", "FEM/Ship"]


@pytest.fixture(scope="module")
def mini_suite():
    return {
        name: load_matrix(name, scale=0.02 if name != "QCD" else 0.05)
        for name in MINI_SUITE
    }


class TestFullComparison:
    @pytest.mark.parametrize("device", [GTX680, GTX480], ids=["gtx680", "gtx480"])
    def test_all_systems_agree_numerically(self, device, mini_suite):
        rng = np.random.default_rng(11)
        for name, A in mini_suite.items():
            x = rng.standard_normal(A.shape[1])
            y_ref = A @ x
            eng = SpMVEngine(device)
            res = eng.multiply(eng.prepare(A), x)
            np.testing.assert_allclose(res.y, y_ref, atol=1e-8, err_msg=name)
            for runner in (
                run_cusparse_best,
                run_cusp,
                run_clspmv_best_single,
                run_clspmv_cocktail,
            ):
                b = runner(A, x, device)
                np.testing.assert_allclose(
                    b.y, y_ref, atol=1e-8, err_msg=f"{name}/{runner.__name__}"
                )

    def test_yaspmv_wins_on_irregular_matrices(self, mini_suite):
        # The paper's headline: on irregular matrices yaSpMV beats the
        # row-based comparators.  Circuit (power-law) is the clearest.
        rng = np.random.default_rng(12)
        A = mini_suite["Circuit"]
        x = rng.standard_normal(A.shape[1])
        eng = SpMVEngine(GTX680)
        ours = eng.multiply(eng.prepare(A), x)
        cusparse = run_cusparse_best(A, x, GTX680)
        cusp = run_cusp(A, x, GTX680)
        assert ours.gflops > cusparse.gflops
        assert ours.gflops > cusp.gflops

    def test_same_numerics_across_devices(self, mini_suite):
        rng = np.random.default_rng(13)
        A = mini_suite["Economics"]
        x = rng.standard_normal(A.shape[1])
        point = TuningPoint()
        y680 = SpMVEngine(GTX680).multiply(
            SpMVEngine(GTX680).prepare(A, point=point), x
        ).y
        y480 = SpMVEngine(GTX480).multiply(
            SpMVEngine(GTX480).prepare(A, point=point), x
        ).y
        np.testing.assert_array_equal(y680, y480)  # timing differs, math doesn't


class TestSolverIntegration:
    def test_conjugate_gradient_with_engine(self):
        # SpMV is the inner loop of CG; the engine must be a drop-in.
        n = 200
        A = sparse.diags(
            [np.full(n - 1, -1.0), np.full(n, 4.0), np.full(n - 1, -1.0)],
            [-1, 0, 1],
        ).tocsr()
        b = np.ones(n)
        eng = SpMVEngine(GTX680)
        prep = eng.prepare(A, point=TuningPoint())

        x = np.zeros(n)
        r = b - eng.multiply(prep, x).y
        p = r.copy()
        rs = r @ r
        for _ in range(300):
            Ap = eng.multiply(prep, p).y
            alpha = rs / (p @ Ap)
            x += alpha * p
            r -= alpha * Ap
            rs_new = r @ r
            if np.sqrt(rs_new) < 1e-10:
                break
            p = r + (rs_new / rs) * p
            rs = rs_new
        np.testing.assert_allclose(A @ x, b, atol=1e-8)

    def test_power_iteration_with_engine(self):
        rng = np.random.default_rng(4)
        A = sparse.random(150, 150, density=0.05, random_state=9, format="csr")
        S = (A + A.T) * 0.5  # symmetric
        eng = SpMVEngine(GTX680)
        prep = eng.prepare(S.tocsr(), point=TuningPoint())
        v = rng.standard_normal(150)
        for _ in range(200):
            w = eng.multiply(prep, v).y
            v = w / np.linalg.norm(w)
        lam = v @ eng.multiply(prep, v).y
        # Rayleigh quotient should match scipy's dominant eigenvalue.
        from scipy.sparse.linalg import eigsh

        lam_ref = eigsh(S, k=1, which="LA", return_eigenvectors=False)[0]
        lam_abs = eigsh(S, k=1, which="LM", return_eigenvectors=False)[0]
        assert lam == pytest.approx(lam_ref, rel=1e-3) or lam == pytest.approx(
            lam_abs, rel=1e-3
        )
