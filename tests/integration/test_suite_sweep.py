"""Suite-wide safety net: every Table 2 matrix through the full stack.

Small-scale versions of all 20 matrices run through: BCCOO conversion,
the fast kernel, the faithful Figures 9-12 executor, and scipy -- all
four must agree exactly.  This is the test that catches a regression in
any structural class (dense, FEM, stencil, power-law, wide) at once.
"""

import numpy as np
import pytest

from repro.formats import BCCOOMatrix
from repro.gpu import GTX680
from repro.kernels import YaSpMVConfig, YaSpMVKernel, yaspmv_faithful
from repro.matrices import SUITE, get_spec

KERNEL = YaSpMVKernel()
CFG = YaSpMVConfig(workgroup_size=32, tile_size=4)

NAMES = [s.name for s in SUITE]


@pytest.mark.parametrize("name", NAMES)
def test_full_stack_agreement(name):
    spec = get_spec(name)
    A = spec.load(scale=spec.scale_for_nnz(6_000), seed=99)
    rng = np.random.default_rng(7)
    x = rng.standard_normal(A.shape[1])
    y_ref = A @ x

    fmt = BCCOOMatrix.from_scipy(A, block_height=2, block_width=2)
    assert (fmt.to_scipy() != A).nnz == 0, f"{name}: lossy conversion"

    fast = KERNEL.run(fmt, x, GTX680, config=CFG).y
    np.testing.assert_allclose(fast, y_ref, atol=1e-8, err_msg=name)

    slow = yaspmv_faithful(fmt, x, CFG)
    np.testing.assert_allclose(slow, fast, atol=1e-10, err_msg=name)


@pytest.mark.parametrize("name", ["QCD", "Circuit", "LP", "Webbase"])
def test_tuned_execution_per_class(name):
    """One representative per structural class through the tuned path."""
    from repro import SpMVEngine

    spec = get_spec(name)
    A = spec.load(scale=spec.scale_for_nnz(20_000), seed=5)
    rng = np.random.default_rng(3)
    x = rng.standard_normal(A.shape[1])
    eng = SpMVEngine(
        "gtx680",
        tuning_kwargs=dict(
            pruned_kwargs=dict(keep_block_dims=2, workgroup_sizes=(64,))
        ),
    )
    res = eng.multiply(eng.prepare(A), x)
    np.testing.assert_allclose(res.y, A @ x, atol=1e-8, err_msg=name)
