"""Tests for the baseline kernels."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import KernelConfigError
from repro.formats import (
    BCSRMatrix,
    BELLMatrix,
    COOMatrix,
    CSRMatrix,
    DIAMatrix,
    ELLMatrix,
    HYBMatrix,
    SELLMatrix,
)
from repro.gpu import GTX680, TimingModel
from repro.kernels import available_kernels, get_kernel

PAIRS = [
    ("csr_scalar", CSRMatrix, {}),
    ("csr_vector", CSRMatrix, {}),
    ("ell", ELLMatrix, {}),
    ("dia", DIAMatrix, {"max_expansion": 1e9}),
    ("hyb", HYBMatrix, {}),
    ("bcsr", BCSRMatrix, {"block_height": 2, "block_width": 2}),
    ("bell", BELLMatrix, {"block_height": 2, "block_width": 2, "max_expansion": 1e9}),
    ("sell", SELLMatrix, {"slice_height": 16}),
    ("coo_segmented", COOMatrix, {}),
]


class TestRegistry:
    def test_all_registered(self):
        assert set(available_kernels()) >= {name for name, _, _ in PAIRS} | {"yaspmv"}

    def test_unknown_kernel(self):
        with pytest.raises(KernelConfigError, match="unknown kernel"):
            get_kernel("turbo")


@pytest.mark.parametrize("kname,fmt_cls,kw", PAIRS)
class TestNumerics:
    def test_matches_scipy(self, kname, fmt_cls, kw, random_matrix, rng):
        A = random_matrix(nrows=80, ncols=80, density=0.1)
        x = rng.standard_normal(80)
        fmt = fmt_cls.from_scipy(A, **kw)
        res = get_kernel(kname).run(fmt, x, GTX680)
        np.testing.assert_allclose(res.y, A @ x, atol=1e-9)

    def test_stats_sane(self, kname, fmt_cls, kw, random_matrix, rng):
        A = random_matrix(nrows=80, ncols=80, density=0.1)
        fmt = fmt_cls.from_scipy(A, **kw)
        res = get_kernel(kname).run(fmt, rng.standard_normal(80), GTX680)
        st = res.stats
        assert st.flops > 0
        assert st.dram_read_bytes > 0
        assert 0 < st.simd_efficiency <= 1.0
        assert st.n_workgroups >= 1
        assert st.n_launches >= 1

    def test_rejects_wrong_format(self, kname, fmt_cls, kw, random_matrix, rng):
        from repro.formats import BCCOOMatrix

        wrong = BCCOOMatrix.from_scipy(random_matrix())
        with pytest.raises(KernelConfigError, match="expects"):
            get_kernel(kname).run(wrong, rng.standard_normal(wrong.ncols), GTX680)


class TestDivergenceModeling:
    def test_scalar_csr_divergence_on_skew(self, skewed_matrix, rng):
        x = rng.standard_normal(skewed_matrix.shape[1])
        fmt = CSRMatrix.from_scipy(skewed_matrix)
        st = get_kernel("csr_scalar").run(fmt, x, GTX680).stats
        assert st.simd_efficiency < 0.5

    def test_scalar_csr_fine_on_uniform(self, stencil_matrix, rng):
        x = rng.standard_normal(stencil_matrix.shape[1])
        fmt = CSRMatrix.from_scipy(stencil_matrix)
        st = get_kernel("csr_scalar").run(fmt, x, GTX680).stats
        assert st.simd_efficiency > 0.9

    def test_vector_csr_idles_on_short_rows(self, stencil_matrix, rng):
        # 3-long rows on 32-lane warps: ~29/32 lanes idle.
        x = rng.standard_normal(stencil_matrix.shape[1])
        fmt = CSRMatrix.from_scipy(stencil_matrix)
        st = get_kernel("csr_vector").run(fmt, x, GTX680).stats
        assert st.simd_efficiency < 0.15

    def test_coo_kernel_balanced(self, skewed_matrix, rng):
        x = rng.standard_normal(skewed_matrix.shape[1])
        fmt = COOMatrix.from_scipy(skewed_matrix)
        st = get_kernel("coo_segmented").run(fmt, x, GTX680).stats
        assert st.workgroup_work is None  # even non-zero split

    def test_skew_inflates_scalar_csr_time(self, skewed_matrix, rng):
        x = rng.standard_normal(skewed_matrix.shape[1])
        tm = TimingModel(GTX680)
        t_scalar = tm.estimate(
            get_kernel("csr_scalar")
            .run(CSRMatrix.from_scipy(skewed_matrix), x, GTX680)
            .stats
        )
        t_coo = tm.estimate(
            get_kernel("coo_segmented")
            .run(COOMatrix.from_scipy(skewed_matrix), x, GTX680)
            .stats
        )
        assert t_scalar.imbalance_factor > t_coo.imbalance_factor
        assert t_scalar.t_total > t_coo.t_total


class TestTrafficModeling:
    def test_ell_pays_for_padding(self, skewed_matrix, rng):
        x = rng.standard_normal(skewed_matrix.shape[1])
        ell = ELLMatrix.from_scipy(skewed_matrix, max_expansion=1e9)
        csr = CSRMatrix.from_scipy(skewed_matrix)
        st_ell = get_kernel("ell").run(ell, x, GTX680).stats
        st_csr = get_kernel("csr_vector").run(csr, x, GTX680).stats
        assert st_ell.dram_read_bytes > st_csr.dram_read_bytes

    def test_hyb_is_two_launches(self, skewed_matrix, rng):
        x = rng.standard_normal(skewed_matrix.shape[1])
        fmt = HYBMatrix.from_scipy(skewed_matrix)
        st = get_kernel("hyb").run(fmt, x, GTX680).stats
        assert st.n_launches >= 2

    def test_coo_reads_twelve_bytes_per_nnz(self, random_matrix, rng):
        A = random_matrix(nrows=100, ncols=100, density=0.2)
        fmt = COOMatrix.from_scipy(A)
        st = get_kernel("coo_segmented").run(fmt, rng.standard_normal(100), GTX680).stats
        assert st.dram_read_bytes >= A.nnz * 12

    def test_dia_avoids_column_indices(self, stencil_matrix, rng):
        x = rng.standard_normal(stencil_matrix.shape[1])
        dia = DIAMatrix.from_scipy(stencil_matrix)
        csr = CSRMatrix.from_scipy(stencil_matrix)
        st_dia = get_kernel("dia").run(dia, x, GTX680).stats
        st_csr = get_kernel("csr_scalar").run(csr, x, GTX680).stats
        assert st_dia.dram_read_bytes < st_csr.dram_read_bytes
