"""Shared contract test for the unified kernel execution protocol.

Every registered kernel must honor ``run(fmt, x, device, *, config)``:

* ``config`` is keyword-only and typed (an instance of the kernel's
  ``config_cls``);
* omitting ``config`` runs the defaults;
* loose option keyword arguments (the pre-unification calling style)
  are a plain :class:`TypeError` -- the deprecation shim is gone;
* passing a config of the wrong type is a :class:`KernelConfigError`.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import KernelConfigError
from repro.formats import get_format
from repro.gpu import GTX680
from repro.kernels import BaselineConfig, YaSpMVConfig, available_kernels

KERNEL_NAMES = sorted(available_kernels())


@pytest.fixture(scope="module")
def banded():
    """Banded matrix so every format (DIA/ELL included) is applicable."""
    rng = np.random.default_rng(7)
    n = 96
    offsets = [-3, -1, 0, 1, 3]
    A = sp.diags(
        [rng.standard_normal(n - abs(k)) for k in offsets], offsets, format="csr"
    )
    return A


@pytest.fixture(scope="module")
def formats(banded):
    """One format instance per registry name used by the kernels."""
    needed = {available_kernels()[name].format_name for name in KERNEL_NAMES}
    return {fname: get_format(fname).from_scipy(banded) for fname in needed}


def _run(kernel, formats, banded, **kw):
    fmt = formats[kernel.format_name]
    x = np.ones(banded.shape[1])
    return kernel.run(fmt, x, GTX680, **kw), banded @ x


@pytest.mark.parametrize("name", KERNEL_NAMES)
class TestRunContract:
    def test_default_config(self, name, formats, banded):
        kernel = available_kernels()[name]
        res, ref = _run(kernel, formats, banded)
        np.testing.assert_allclose(res.y, ref, atol=1e-9)
        assert res.stats.dram_read_bytes > 0

    def test_explicit_config_equivalent(self, name, formats, banded):
        kernel = available_kernels()[name]
        default, ref = _run(kernel, formats, banded)
        explicit, _ = _run(kernel, formats, banded, config=kernel.config_cls())
        np.testing.assert_array_equal(default.y, explicit.y)
        assert default.stats.workgroup_size == explicit.stats.workgroup_size

    def test_config_is_keyword_only(self, name, formats, banded):
        kernel = available_kernels()[name]
        fmt = formats[kernel.format_name]
        x = np.ones(banded.shape[1])
        with pytest.raises(TypeError):
            kernel.run(fmt, x, GTX680, kernel.config_cls())

    def test_loose_kwargs_rejected(self, name, formats, banded):
        # The deprecation shim is gone: option kwargs must travel inside
        # a config object, and unknown names are a plain TypeError.
        kernel = available_kernels()[name]
        with pytest.raises(TypeError):
            _run(kernel, formats, banded, workgroup_size=64)
        with pytest.raises(TypeError):
            _run(kernel, formats, banded, not_a_real_option=1)

    def test_wrong_config_type_rejected(self, name, formats, banded):
        kernel = available_kernels()[name]
        wrong = (
            YaSpMVConfig() if kernel.config_cls is BaselineConfig else BaselineConfig()
        )
        with pytest.raises(KernelConfigError, match="config"):
            _run(kernel, formats, banded, config=wrong)

    def test_config_cls_declared(self, name):
        kernel = available_kernels()[name]
        assert isinstance(kernel.config_cls, type)
        # Every config exposes the knob the engine/tuner rely on.
        assert hasattr(kernel.config_cls(), "workgroup_size")
