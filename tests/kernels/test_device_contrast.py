"""Cross-device shape tests: Fermi vs Kepler behaviour differences.

The paper's evaluation leans on one architectural contrast: Kepler has
about twice Fermi's FLOP/byte ratio and no L1 for global loads, so
bandwidth savings (BCCOO) pay off more on the GTX680 while row-based
CSR kernels hold up relatively better on the GTX480.  These tests pin
the model behaviours that produce that contrast.
"""

import numpy as np
import pytest

from repro.formats import BCCOOMatrix, CSRMatrix
from repro.gpu import GTX480, GTX680, TimingModel
from repro.kernels import YaSpMVConfig, get_kernel


@pytest.fixture
def skewed_pair(skewed_matrix, rng):
    x = rng.standard_normal(skewed_matrix.shape[1])
    return skewed_matrix, x


class TestL1GlobalLoads:
    def test_fermi_softens_scalar_csr_gathers(self, skewed_pair):
        A, x = skewed_pair
        fmt = CSRMatrix.from_scipy(A)
        st480 = get_kernel("csr_scalar").run(fmt, x, GTX480).stats
        st680 = get_kernel("csr_scalar").run(fmt, x, GTX680).stats
        # Same matrix, same kernel: Fermi's L1 absorbs part of the
        # sector waste, Kepler pays it all.
        assert st480.dram_read_bytes < st680.dram_read_bytes

    def test_yaspmv_traffic_device_independent(self, skewed_pair):
        # yaSpMV streams everything coalesced; its bytes don't depend on
        # the L1-for-globals distinction (only the texture path differs
        # in capacity).
        A, x = skewed_pair
        fmt = BCCOOMatrix.from_scipy(A)
        cfg = YaSpMVConfig()
        st480 = get_kernel("yaspmv").run(fmt, x, GTX480, config=cfg).stats
        st680 = get_kernel("yaspmv").run(fmt, x, GTX680, config=cfg).stats
        # Matrix streams are identical; only the DRAM-vs-cache split of
        # the vector reads may differ between the devices.
        total480 = st480.dram_read_bytes + st480.cached_read_bytes
        total680 = st680.dram_read_bytes + st680.cached_read_bytes
        assert total480 == pytest.approx(total680, rel=1e-6)

    def test_bigger_texture_cache_helps_kepler_vector_reads(self, rng):
        # A vector bigger than 12 KB but under 48 KB: Kepler's larger
        # read-only cache converts misses to hits.
        from repro.matrices import fem_banded

        A = fem_banded(8000, nnz_per_row=30, seed=4)  # 32 KB vector
        x = rng.standard_normal(A.shape[1])
        fmt = BCCOOMatrix.from_scipy(A)
        cfg = YaSpMVConfig()
        st480 = get_kernel("yaspmv").run(fmt, x, GTX480, config=cfg).stats
        st680 = get_kernel("yaspmv").run(fmt, x, GTX680, config=cfg).stats
        assert st680.cached_read_bytes > st480.cached_read_bytes


class TestRelativeAdvantage:
    def test_yaspmv_edge_over_csr_larger_on_kepler(self, skewed_pair):
        """The Figure 13-vs-15 shape in miniature."""
        A, x = skewed_pair
        csr = CSRMatrix.from_scipy(A)
        bccoo = BCCOOMatrix.from_scipy(A)
        cfg = YaSpMVConfig()

        def advantage(dev):
            tm = TimingModel(dev)
            t_csr = tm.estimate(
                get_kernel("csr_scalar").run(csr, x, dev).stats
            ).t_total
            t_ya = tm.estimate(
                get_kernel("yaspmv").run(bccoo, x, dev, config=cfg).stats
            ).t_total
            return t_csr / t_ya

        assert advantage(GTX680) > advantage(GTX480)
