"""Cross-validation of the fast yaSpMV path against the faithful executor.

The faithful executor in :mod:`repro.kernels.faithful` follows the
paper's Figures 9-12 literally.  These tests are the proof obligation
that the closed-form fast path computes exactly what the specified
dataflow computes, plus assertions on the executor's internal trace
(early-check skips, result-cache spills, Grp_sum values).
"""

import numpy as np
import pytest
from scipy import sparse

from repro.formats import BCCOOMatrix, BCCOOPlusMatrix
from repro.gpu import GTX680
from repro.kernels import FaithfulTrace, YaSpMVConfig, YaSpMVKernel, yaspmv_faithful

KERNEL = YaSpMVKernel()


def _agree(A, cfg, rng, atol=1e-9):
    fmt = BCCOOMatrix.from_scipy(A)
    x = rng.standard_normal(A.shape[1])
    fast = KERNEL.run(fmt, x, GTX680, config=cfg).y
    slow = yaspmv_faithful(fmt, x, cfg)
    np.testing.assert_allclose(slow, fast, atol=atol)
    np.testing.assert_allclose(fast, A @ x, atol=atol)


class TestAgreement:
    @pytest.mark.parametrize("strategy", [1, 2])
    @pytest.mark.parametrize("fine_grain", [True, False])
    def test_random(self, strategy, fine_grain, random_matrix, rng):
        cfg = YaSpMVConfig(
            workgroup_size=32,
            strategy=strategy,
            reg_size=3,
            shm_size=1,
            tile_size=4,
            fine_grain=fine_grain,
        )
        _agree(random_matrix(nrows=90, ncols=70, density=0.08), cfg, rng)

    def test_long_row_spanning_workgroups(self, rng):
        A = sparse.csr_matrix(np.ones((2, 500)))
        cfg = YaSpMVConfig(workgroup_size=32, tile_size=2)
        _agree(A, cfg, rng)

    def test_tiny_result_cache_spills(self, rng):
        # One-nonzero rows: a 128-block workgroup tile produces 128
        # segment sums against 32 cache entries, forcing spills.
        A = sparse.identity(500, format="csr")
        cfg = YaSpMVConfig(workgroup_size=32, strategy=2, tile_size=4,
                           result_cache_multiple=1)
        fmt = BCCOOMatrix.from_scipy(A)
        x = rng.standard_normal(500)
        tr = FaithfulTrace()
        slow = yaspmv_faithful(fmt, x, cfg, tr)
        np.testing.assert_allclose(slow, A @ x, atol=1e-9)
        assert tr.cache_spills > 0

    def test_plus_agrees(self, random_matrix, rng):
        A = random_matrix(nrows=50, ncols=120, density=0.1)
        fmt = BCCOOPlusMatrix.from_scipy(A, slice_count=4, block_height=2, block_width=2)
        x = rng.standard_normal(120)
        cfg = YaSpMVConfig(workgroup_size=32, tile_size=4)
        fast = KERNEL.run(fmt, x, GTX680, config=cfg).y
        slow = yaspmv_faithful(fmt, x, cfg)
        np.testing.assert_allclose(slow, fast, atol=1e-9)


class TestTrace:
    def test_early_check_skips_scan_on_dense_stops(self, rng):
        # Every 1x1 block of a diagonal matrix is a row stop, so every
        # thread tile has a stop: all parallel scans are skipped.
        A = sparse.identity(256, format="csr")
        fmt = BCCOOMatrix.from_scipy(A)
        cfg = YaSpMVConfig(workgroup_size=32, tile_size=2, fine_grain=True)
        tr = FaithfulTrace()
        yaspmv_faithful(fmt, rng.standard_normal(256), cfg, tr)
        assert tr.parallel_scans_skipped > 0
        assert tr.parallel_scans_run == 0

    def test_no_skip_when_fine_grain_off(self, rng):
        A = sparse.identity(256, format="csr")
        fmt = BCCOOMatrix.from_scipy(A)
        cfg = YaSpMVConfig(workgroup_size=32, tile_size=2, fine_grain=False)
        tr = FaithfulTrace()
        yaspmv_faithful(fmt, rng.standard_normal(256), cfg, tr)
        assert tr.parallel_scans_skipped == 0
        assert tr.parallel_scans_run > 0

    def test_grp_sum_zero_convention(self, rng):
        # A workgroup ending exactly on a row stop publishes Grp_sum 0
        # (the paper's "0 eliminates the condition check" property).
        n = 64  # one workgroup tile = 32 threads x 2 = 64 blocks
        A = sparse.csr_matrix(np.ones((1, n)))  # row ends at block 63
        fmt = BCCOOMatrix.from_scipy(A)
        cfg = YaSpMVConfig(workgroup_size=32, tile_size=2)
        tr = FaithfulTrace()
        yaspmv_faithful(fmt, rng.standard_normal(n), cfg, tr)
        assert tr.grp_sum[0] == pytest.approx(0.0)
