"""Tests for the double-precision extension."""

import numpy as np
import pytest

from repro.errors import KernelConfigError
from repro.formats import BCCOOMatrix
from repro.gpu import GTX480, GTX680, TimingModel
from repro.kernels import YaSpMVConfig, YaSpMVKernel

KERNEL = YaSpMVKernel()


class TestPrecisionConfig:
    def test_value_bytes(self):
        assert YaSpMVConfig(precision="fp32").value_bytes == 4
        assert YaSpMVConfig(precision="fp64").value_bytes == 8

    def test_invalid(self):
        with pytest.raises(KernelConfigError, match="precision"):
            YaSpMVConfig(precision="fp16")


class TestPrecisionCosts:
    @pytest.fixture
    def pair(self, random_matrix, rng):
        A = random_matrix(nrows=300, ncols=300, density=0.05)
        return A, rng.standard_normal(300)

    def test_same_numerics(self, pair):
        A, x = pair
        fmt = BCCOOMatrix.from_scipy(A)
        y32 = KERNEL.run(fmt, x, GTX680, config=YaSpMVConfig()).y
        y64 = KERNEL.run(fmt, x, GTX680, config=YaSpMVConfig(precision="fp64")).y
        np.testing.assert_array_equal(y32, y64)  # host math is float64

    def test_fp64_moves_more_bytes(self, pair):
        A, x = pair
        fmt = BCCOOMatrix.from_scipy(A)
        s32 = KERNEL.run(fmt, x, GTX680, config=YaSpMVConfig()).stats
        s64 = KERNEL.run(fmt, x, GTX680, config=YaSpMVConfig(precision="fp64")).stats
        assert s64.fp64 and not s32.fp64
        # Values dominate the stream; doubling them should land the
        # total well above 1.4x the fp32 traffic.
        assert s64.dram_read_bytes > 1.4 * s32.dram_read_bytes

    def test_fp64_slower_end_to_end(self, pair):
        A, x = pair
        fmt = BCCOOMatrix.from_scipy(A)
        tm = TimingModel(GTX680)
        t32 = tm.estimate(KERNEL.run(fmt, x, GTX680, config=YaSpMVConfig()).stats)
        t64 = tm.estimate(
            KERNEL.run(fmt, x, GTX680, config=YaSpMVConfig(precision="fp64")).stats
        )
        assert t64.t_total > t32.t_total

    def test_fp64_peak_applied(self):
        from repro.gpu import KernelStats

        st = KernelStats(flops=1e9, dram_read_bytes=1e3, fp64=True)
        br64 = TimingModel(GTX680).estimate(st)
        st32 = KernelStats(flops=1e9, dram_read_bytes=1e3, fp64=False)
        br32 = TimingModel(GTX680).estimate(st32)
        # GK104's fp64 rate is 1/24 of fp32: a compute-heavy profile
        # slows by that order.
        assert br64.t_compute > 20 * br32.t_compute
        assert br64.bound == "compute"

    def test_fermi_better_fp64_ratio(self):
        # GF100's fp64:fp32 is 1:8, GK104's 1:24 -- the Kepler GeForce
        # trade-off the era's HPC users complained about.
        assert GTX480.peak_flops / GTX480.peak_flops_dp < 10
        assert GTX680.peak_flops / GTX680.peak_flops_dp > 20

    def test_shared_memory_budget_doubles(self, pair):
        # An fp64 configuration can exceed the shared-memory budget that
        # its fp32 twin fits in.
        A, x = pair
        fmt = BCCOOMatrix.from_scipy(A, block_height=4)
        big = YaSpMVConfig(
            workgroup_size=512,
            strategy=2,
            result_cache_multiple=2,
            transpose="online",
            tile_size=16,
            precision="fp64",
        )
        with pytest.raises(KernelConfigError, match="shared memory"):
            KERNEL.run(fmt, x, GTX680, config=big)
