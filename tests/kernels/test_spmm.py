"""Tests for the multi-vector (SpMM) extension."""

import numpy as np
import pytest

from repro import SpMVEngine
from repro.errors import KernelConfigError
from repro.formats import BCCOOMatrix, BCCOOPlusMatrix
from repro.gpu import GTX680, TimingModel
from repro.kernels import YaSpMVConfig
from repro.kernels.yaspmv import YaSpMMKernel
from repro.tuning import TuningPoint

KERNEL = YaSpMMKernel()
SMALL = YaSpMVConfig(workgroup_size=32, tile_size=4)


class TestNumerics:
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_matches_dense_product(self, k, random_matrix, rng):
        A = random_matrix(nrows=80, ncols=60, density=0.1)
        X = rng.standard_normal((60, k))
        fmt = BCCOOMatrix.from_scipy(A, block_height=2, block_width=2)
        res = KERNEL.run_multi(fmt, X, GTX680, config=SMALL)
        np.testing.assert_allclose(res.y, A @ X, atol=1e-9)

    def test_matches_column_by_column(self, random_matrix, rng):
        A = random_matrix()
        X = rng.standard_normal((A.shape[1], 5))
        fmt = BCCOOMatrix.from_scipy(A)
        multi = KERNEL.run_multi(fmt, X, GTX680, config=SMALL).y
        for j in range(5):
            single = KERNEL.run(fmt, X[:, j], GTX680, config=SMALL).y
            np.testing.assert_allclose(multi[:, j], single, atol=1e-12)

    def test_bccoo_plus(self, random_matrix, rng):
        A = random_matrix(nrows=50, ncols=120, density=0.1)
        X = rng.standard_normal((120, 4))
        fmt = BCCOOPlusMatrix.from_scipy(A, slice_count=4)
        res = KERNEL.run_multi(fmt, X, GTX680, config=SMALL)
        np.testing.assert_allclose(res.y, A @ X, atol=1e-9)

    def test_rejects_1d(self, random_matrix, rng):
        fmt = BCCOOMatrix.from_scipy(random_matrix())
        with pytest.raises(KernelConfigError, match="2-D"):
            KERNEL.run_multi(fmt, rng.standard_normal(fmt.ncols), GTX680, config=SMALL)

    def test_rejects_wrong_rows(self, random_matrix, rng):
        fmt = BCCOOMatrix.from_scipy(random_matrix(ncols=50))
        with pytest.raises(KernelConfigError, match="columns"):
            KERNEL.run_multi(fmt, rng.standard_normal((49, 2)), GTX680, config=SMALL)


class TestAmortization:
    def test_matrix_stream_read_once(self, random_matrix, rng):
        A = random_matrix(nrows=300, ncols=300, density=0.05)
        fmt = BCCOOMatrix.from_scipy(A)
        tm = TimingModel(GTX680)
        t1 = tm.estimate(
            KERNEL.run_multi(fmt, rng.standard_normal((300, 1)), GTX680, config=SMALL).stats
        ).t_total
        t8 = tm.estimate(
            KERNEL.run_multi(fmt, rng.standard_normal((300, 8)), GTX680, config=SMALL).stats
        ).t_total
        # Eight RHS must cost far less than eight sequential multiplies.
        assert t8 < 5 * t1
        assert t8 > t1  # but not free

    def test_flops_scale_with_k(self, random_matrix, rng):
        A = random_matrix()
        fmt = BCCOOMatrix.from_scipy(A)
        s1 = KERNEL.run_multi(fmt, rng.standard_normal((A.shape[1], 1)), GTX680, config=SMALL).stats
        s4 = KERNEL.run_multi(fmt, rng.standard_normal((A.shape[1], 4)), GTX680, config=SMALL).stats
        assert s4.flops == pytest.approx(4 * s1.flops)

    def test_shared_memory_blowup_guarded(self, random_matrix, rng):
        fmt = BCCOOMatrix.from_scipy(random_matrix(), block_height=4)
        cfg = YaSpMVConfig(workgroup_size=512, strategy=2, result_cache_multiple=2)
        with pytest.raises(KernelConfigError, match="shared"):
            KERNEL.run_multi(
                fmt, rng.standard_normal((fmt.ncols, 64)), GTX680, config=cfg
            )


class TestEngineIntegration:
    def test_multiply_many(self, random_matrix, rng):
        A = random_matrix(nrows=100, ncols=100, density=0.08)
        X = rng.standard_normal((100, 6))
        eng = SpMVEngine(GTX680)
        prep = eng.prepare(A, point=TuningPoint())
        res = eng.multiply_many(prep, X)
        np.testing.assert_allclose(res.y, A @ X, atol=1e-9)
        assert res.nnz == A.nnz * 6
        assert res.gflops > 0
