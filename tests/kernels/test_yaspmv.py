"""Tests for the yaSpMV kernel (fast path)."""

import numpy as np
import pytest

from repro.errors import KernelConfigError
from repro.formats import BCCOOMatrix, BCCOOPlusMatrix, CSRMatrix
from repro.gpu import GTX480, GTX680, TimingModel
from repro.kernels import YaSpMVConfig, YaSpMVKernel

KERNEL = YaSpMVKernel()
SMALL = YaSpMVConfig(workgroup_size=32, tile_size=4, reg_size=4)


class TestNumerics:
    def test_paper_example(self, paper_matrix_a, rng):
        fmt = BCCOOMatrix.from_scipy(paper_matrix_a, block_height=2, block_width=2)
        x = rng.standard_normal(8)
        res = KERNEL.run(fmt, x, GTX680, config=SMALL)
        np.testing.assert_allclose(res.y, paper_matrix_a @ x, atol=1e-12)

    @pytest.mark.parametrize("strategy", [1, 2])
    @pytest.mark.parametrize("h,w", [(1, 1), (2, 2), (4, 4), (3, 2)])
    def test_blocks_and_strategies(self, strategy, h, w, random_matrix, rng):
        A = random_matrix(nrows=70, ncols=90, density=0.08)
        x = rng.standard_normal(90)
        fmt = BCCOOMatrix.from_scipy(A, block_height=h, block_width=w)
        cfg = YaSpMVConfig(workgroup_size=32, strategy=strategy, tile_size=4, reg_size=4)
        res = KERNEL.run(fmt, x, GTX680, config=cfg)
        np.testing.assert_allclose(res.y, A @ x, atol=1e-9)

    def test_empty_block_rows(self, empty_row_matrix, rng):
        fmt = BCCOOMatrix.from_scipy(empty_row_matrix, block_height=2, block_width=2)
        x = rng.standard_normal(20)
        res = KERNEL.run(fmt, x, GTX680, config=SMALL)
        np.testing.assert_allclose(res.y, empty_row_matrix @ x, atol=1e-12)

    def test_bccoo_plus(self, random_matrix, rng):
        A = random_matrix(nrows=60, ncols=120, density=0.1)
        x = rng.standard_normal(120)
        fmt = BCCOOPlusMatrix.from_scipy(A, slice_count=4, block_height=2, block_width=2)
        res = KERNEL.run(fmt, x, GTX680, config=SMALL)
        np.testing.assert_allclose(res.y, A @ x, atol=1e-9)

    def test_segment_spanning_workgroups(self, rng):
        # One dense row much longer than a workgroup tile: the adjacent
        # sync chain must carry partial sums across workgroups.
        from scipy import sparse

        n = 600
        A = sparse.csr_matrix(np.ones((1, n)))
        x = rng.standard_normal(n)
        fmt = BCCOOMatrix.from_scipy(A)
        cfg = YaSpMVConfig(workgroup_size=32, tile_size=2)
        res = KERNEL.run(fmt, x, GTX680, config=cfg)
        np.testing.assert_allclose(res.y, [x.sum()], atol=1e-9)

    @pytest.mark.parametrize("kw", [
        dict(scan_mode="tree"),
        dict(cross_wg="second_kernel"),
        dict(fine_grain=False),
        dict(transpose="online"),
        dict(use_texture=False),
        dict(workgroup_ids="atomic"),
    ])
    def test_ablations_do_not_change_numerics(self, kw, random_matrix, rng):
        A = random_matrix(nrows=80, ncols=80, density=0.1)
        x = rng.standard_normal(80)
        fmt = BCCOOMatrix.from_scipy(A)
        cfg = SMALL.with_overrides(**kw)
        res = KERNEL.run(fmt, x, GTX680, config=cfg)
        np.testing.assert_allclose(res.y, A @ x, atol=1e-9)


class TestCostModel:
    @pytest.fixture
    def fmt(self, random_matrix):
        return BCCOOMatrix.from_scipy(random_matrix(nrows=200, ncols=200, density=0.1))

    @pytest.fixture
    def x(self, rng):
        return rng.standard_normal(200)

    def test_workload_is_balanced(self, fmt, x):
        res = KERNEL.run(fmt, x, GTX680, config=SMALL)
        assert res.stats.workgroup_work is None  # equal tiles by design

    def test_fine_grain_reduces_col_bytes(self, fmt, x):
        on = KERNEL.run(fmt, x, GTX680, config=SMALL).stats
        off = KERNEL.run(
            fmt, x, GTX680, config=SMALL.with_overrides(fine_grain=False)
        ).stats
        assert on.dram_read_bytes < off.dram_read_bytes

    def test_second_kernel_costs_extra_launch(self, fmt, x):
        adj = KERNEL.run(fmt, x, GTX680, config=SMALL).stats
        two = KERNEL.run(
            fmt, x, GTX680, config=SMALL.with_overrides(cross_wg="second_kernel")
        ).stats
        assert two.n_launches == adj.n_launches + 1
        assert adj.sync_chain_lengths.size > 0
        assert two.sync_chain_lengths.size == 0

    def test_tree_scan_costs_more_flops(self, fmt, x):
        matrix = KERNEL.run(fmt, x, GTX680, config=SMALL).stats
        tree = KERNEL.run(
            fmt, x, GTX680, config=SMALL.with_overrides(scan_mode="tree")
        ).stats
        assert tree.flops > matrix.flops
        assert tree.simd_efficiency < matrix.simd_efficiency

    def test_texture_off_more_dram(self, fmt, x):
        on = KERNEL.run(fmt, x, GTX680, config=SMALL).stats
        off = KERNEL.run(
            fmt, x, GTX680, config=SMALL.with_overrides(use_texture=False)
        ).stats
        assert off.dram_read_bytes >= on.dram_read_bytes

    def test_atomic_ids_counted(self, fmt, x):
        st = KERNEL.run(
            fmt, x, GTX680, config=SMALL.with_overrides(workgroup_ids="atomic")
        ).stats
        assert st.atomics == st.n_workgroups

    def test_atomic_overhead_small(self, fmt, x):
        # Paper: logical-id atomics cost < 2%.
        tm = TimingModel(GTX680)
        t_in = tm.estimate(KERNEL.run(fmt, x, GTX680, config=SMALL).stats).t_total
        t_at = tm.estimate(
            KERNEL.run(
                fmt, x, GTX680, config=SMALL.with_overrides(workgroup_ids="atomic")
            ).stats
        ).t_total
        assert t_at <= t_in * 1.05

    def test_end_to_end_faster_than_two_kernel(self, fmt, x):
        tm = TimingModel(GTX680)
        adj = tm.estimate(KERNEL.run(fmt, x, GTX680, config=SMALL).stats).t_total
        two = tm.estimate(
            KERNEL.run(
                fmt, x, GTX680, config=SMALL.with_overrides(cross_wg="second_kernel")
            ).stats
        ).t_total
        assert adj < two

    def test_plus_adds_combine_launch(self, random_matrix, rng):
        A = random_matrix(nrows=60, ncols=100, density=0.1)
        x = rng.standard_normal(100)
        plain = KERNEL.run(BCCOOMatrix.from_scipy(A), x, GTX680, config=SMALL).stats
        plus = KERNEL.run(
            BCCOOPlusMatrix.from_scipy(A, slice_count=4), x, GTX680, config=SMALL
        ).stats
        assert plus.n_launches == plain.n_launches + 1


class TestValidation:
    def test_rejects_non_bccoo(self, random_matrix, rng):
        csr = CSRMatrix.from_scipy(random_matrix())
        with pytest.raises(KernelConfigError, match="BCCOO"):
            KERNEL.run(csr, rng.standard_normal(csr.ncols), GTX680, config=SMALL)

    def test_rejects_bad_vector(self, random_matrix):
        fmt = BCCOOMatrix.from_scipy(random_matrix(ncols=50))
        with pytest.raises(KernelConfigError, match="vector length"):
            KERNEL.run(fmt, np.zeros(49), GTX680, config=SMALL)

    def test_rejects_non_warp_multiple_workgroup(self, random_matrix, rng):
        fmt = BCCOOMatrix.from_scipy(random_matrix())
        with pytest.raises(KernelConfigError, match="warp"):
            KERNEL.run(
                fmt,
                rng.standard_normal(fmt.ncols),
                GTX680,
                config=YaSpMVConfig(workgroup_size=48),
            )

    def test_rejects_register_blowup(self, random_matrix, rng):
        fmt = BCCOOMatrix.from_scipy(random_matrix(), block_height=4)
        cfg = YaSpMVConfig(workgroup_size=32, strategy=1, reg_size=32)
        with pytest.raises(KernelConfigError, match="registers"):
            KERNEL.run(fmt, rng.standard_normal(fmt.ncols), GTX480, config=cfg)

    def test_rejects_shared_memory_blowup(self, random_matrix, rng):
        fmt = BCCOOMatrix.from_scipy(random_matrix(), block_height=4)
        cfg = YaSpMVConfig(
            workgroup_size=512, strategy=2, tile_size=32, result_cache_multiple=2,
            transpose="online",
        )
        with pytest.raises(KernelConfigError, match="shared memory"):
            KERNEL.run(fmt, rng.standard_normal(fmt.ncols), GTX680, config=cfg)

    def test_config_validation(self):
        with pytest.raises(KernelConfigError):
            YaSpMVConfig(strategy=3)
        with pytest.raises(KernelConfigError):
            YaSpMVConfig(transpose="diagonal")
        with pytest.raises(KernelConfigError):
            YaSpMVConfig(strategy=2, tile_size=0)
        with pytest.raises(KernelConfigError):
            YaSpMVConfig(strategy=1, reg_size=0, shm_size=0)

    def test_effective_tile(self):
        assert YaSpMVConfig(strategy=1, reg_size=12, shm_size=4).effective_tile == 16
        assert YaSpMVConfig(strategy=2, tile_size=8).effective_tile == 8
