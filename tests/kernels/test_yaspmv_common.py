"""Tests for the shared kernel preparation machinery."""

import numpy as np
import pytest

from repro.formats import BCCOOMatrix
from repro.kernels import YaSpMVConfig
from repro.kernels.yaspmv_common import block_contributions, prepare


class TestPrepare:
    def test_pads_to_workgroup_work(self, random_matrix):
        fmt = BCCOOMatrix.from_scipy(random_matrix())
        cfg = YaSpMVConfig(workgroup_size=64, tile_size=8)
        padded = prepare(fmt, cfg)
        assert padded.nb_padded % cfg.workgroup_work == 0
        assert padded.nb_valid == fmt.nblocks
        assert padded.n_workgroups == padded.nb_padded // cfg.workgroup_work

    def test_padding_blocks_are_inert(self, random_matrix):
        fmt = BCCOOMatrix.from_scipy(random_matrix())
        cfg = YaSpMVConfig(workgroup_size=64, tile_size=8)
        padded = prepare(fmt, cfg)
        tail = slice(padded.nb_valid, None)
        assert not padded.stops[tail].any()  # continue flags only
        assert np.all(padded.values[tail] == 0.0)

    def test_thread_and_workgroup_views(self, random_matrix):
        fmt = BCCOOMatrix.from_scipy(random_matrix())
        cfg = YaSpMVConfig(workgroup_size=32, tile_size=4)
        padded = prepare(fmt, cfg)
        assert padded.thread_stops().shape == (padded.n_threads_total, 4)
        assert padded.workgroup_stops().shape == (
            padded.n_workgroups,
            cfg.workgroup_work,
        )

    def test_strategy1_tile_is_reg_plus_shm(self, random_matrix):
        fmt = BCCOOMatrix.from_scipy(random_matrix())
        cfg = YaSpMVConfig(workgroup_size=32, strategy=1, reg_size=5, shm_size=3)
        padded = prepare(fmt, cfg)
        assert padded.tile == 8


class TestBlockContributions:
    def test_against_dense_reference(self, paper_matrix_a, rng):
        fmt = BCCOOMatrix.from_scipy(paper_matrix_a, block_height=2, block_width=2)
        cfg = YaSpMVConfig(workgroup_size=32, tile_size=1)
        padded = prepare(fmt, cfg)
        x = rng.standard_normal(8)
        contribs, gather = block_contributions(padded, x)

        # Each block's contribution equals the dense sub-block product.
        dense = paper_matrix_a.toarray()
        cols = fmt.columns()[: fmt.nblocks]
        rows = fmt.block_rows()
        for b in range(fmt.nblocks):
            r0, c0 = rows[b] * 2, cols[b] * 2
            expected = dense[r0 : r0 + 2, c0 : c0 + 2] @ x[c0 : c0 + 2]
            np.testing.assert_allclose(contribs[b], expected, atol=1e-12)

    def test_gather_stream_shape(self, random_matrix, rng):
        fmt = BCCOOMatrix.from_scipy(random_matrix(), block_width=4)
        cfg = YaSpMVConfig(workgroup_size=32, tile_size=2)
        padded = prepare(fmt, cfg)
        _, gather = block_contributions(padded, rng.standard_normal(fmt.ncols))
        assert gather.shape == (padded.nb_padded * 4,)
        assert gather.min() >= 0
        assert gather.max() < fmt.ncols

    def test_edge_blocks_clamped(self, rng):
        # 5 columns with width-4 blocks: the right edge block reads
        # clamped indices but contributes exactly.
        from scipy import sparse

        A = sparse.random(6, 5, density=0.5, random_state=0, format="csr")
        fmt = BCCOOMatrix.from_scipy(A, block_width=4)
        cfg = YaSpMVConfig(workgroup_size=32, tile_size=1)
        padded = prepare(fmt, cfg)
        x = rng.standard_normal(5)
        contribs, _ = block_contributions(padded, x)
        total = np.zeros(fmt.n_block_rows)
        np.add.at(total, fmt.block_rows(), contribs[: fmt.nblocks, 0])
        np.testing.assert_allclose(total[: A.shape[0]], (A @ x), atol=1e-12)
