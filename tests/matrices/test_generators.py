"""Tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.errors import MatrixGenerationError
from repro.matrices import (
    dense_matrix,
    fem_banded,
    power_law,
    random_uniform,
    row_stats,
    stencil,
    wide_rows,
)


class TestDense:
    def test_fully_dense(self):
        A = dense_matrix(30, 40, seed=1)
        assert A.nnz == 30 * 40

    def test_deterministic(self):
        a = dense_matrix(10, 10, seed=7)
        b = dense_matrix(10, 10, seed=7)
        assert (a != b).nnz == 0

    def test_invalid_shape(self):
        with pytest.raises(MatrixGenerationError):
            dense_matrix(0, 5)


class TestFemBanded:
    def test_near_uniform_rows(self):
        A = fem_banded(3000, nnz_per_row=50, block=3, seed=2)
        rs = row_stats(A)
        assert 0.5 * 50 < rs.mean < 1.5 * 50
        assert rs.gini < 0.2  # FEM matrices are regular

    def test_banded(self):
        from repro.matrices import bandwidth

        A = fem_banded(3000, nnz_per_row=30, band_fraction=0.02, seed=3)
        assert bandwidth(A) < 3000 * 0.1

    def test_block_substructure_pays_off(self):
        from repro.matrices import block_fill_ratio

        A = fem_banded(900, nnz_per_row=40, block=3, seed=4)
        # 3x3 blocking should see low fill-in (dense clusters)...
        assert block_fill_ratio(A, 3, 3) < 1.6
        # ...much lower than on an unstructured matrix of equal density.
        B = random_uniform(900, 900, 40, seed=4)
        assert block_fill_ratio(A, 3, 3) < block_fill_ratio(B, 3, 3)

    def test_invalid(self):
        with pytest.raises(MatrixGenerationError):
            fem_banded(2, nnz_per_row=5, block=3)


class TestStencil:
    def test_exact_diagonals(self):
        A = stencil(500, (-10, -1, 0, 1, 10), seed=0)
        from repro.formats import DIAMatrix

        dia = DIAMatrix.from_scipy(A)
        assert dia.ndiags == 5

    def test_interior_row_length(self):
        A = stencil(1000, (-1, 0, 1), seed=0)
        assert row_stats(A).max == 3

    def test_empty_offsets(self):
        with pytest.raises(MatrixGenerationError):
            stencil(100, ())


class TestPowerLaw:
    def test_skewed_degrees(self):
        A = power_law(20_000, 120_000, alpha=2.0, seed=5)
        rs = row_stats(A)
        assert rs.gini > 0.3
        assert rs.max > 10 * rs.mean

    def test_heavier_tail_with_smaller_alpha(self):
        heavy = row_stats(power_law(20_000, 100_000, alpha=1.8, seed=6))
        light = row_stats(power_law(20_000, 100_000, alpha=3.0, seed=6))
        assert heavy.gini > light.gini

    def test_nnz_near_target(self):
        A = power_law(10_000, 80_000, seed=7)
        assert 0.4 * 80_000 < A.nnz <= 1.2 * 80_000

    def test_too_few_nnz(self):
        with pytest.raises(MatrixGenerationError):
            power_law(1000, 10)


class TestWideRows:
    def test_lp_shape(self):
        A = wide_rows(50, 20_000, 1500, seed=8)
        assert A.shape == (50, 20_000)
        rs = row_stats(A)
        assert rs.mean > 1000  # dedup loses a few

    def test_validation(self):
        with pytest.raises(MatrixGenerationError):
            wide_rows(10, 100, 200)


class TestRandomUniform:
    def test_poisson_rows(self):
        A = random_uniform(5000, 5000, 6.0, seed=9)
        rs = row_stats(A)
        assert 4 < rs.mean < 8
        assert rs.gini < 0.35
