"""Tests for Matrix Market IO."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import FormatError
from repro.matrices import read_matrix_market, write_matrix_market


class TestRoundTrip:
    def test_general_real(self, tmp_path, random_matrix):
        A = random_matrix(nrows=30, ncols=25, density=0.2)
        path = tmp_path / "a.mtx"
        write_matrix_market(path, A)
        B = read_matrix_market(path)
        assert B.shape == A.shape
        np.testing.assert_allclose(B.toarray(), A.toarray())

    def test_empty_matrix(self, tmp_path):
        A = sparse.csr_matrix((5, 7))
        path = tmp_path / "e.mtx"
        write_matrix_market(path, A)
        B = read_matrix_market(path)
        assert B.shape == (5, 7) and B.nnz == 0


class TestParsing:
    def _write(self, tmp_path, text):
        p = tmp_path / "m.mtx"
        p.write_text(text)
        return p

    def test_symmetric_expansion(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 5.0\n"
            "3 3 7.0\n",
        )
        A = read_matrix_market(p).toarray()
        assert A[1, 0] == 5.0 and A[0, 1] == 5.0
        assert A[2, 2] == 7.0  # diagonal not duplicated

    def test_pattern_field(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 2\n"
            "1 1\n"
            "2 2\n",
        )
        A = read_matrix_market(p).toarray()
        np.testing.assert_array_equal(A, np.eye(2))

    def test_comments_skipped(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "% another\n"
            "2 2 1\n"
            "1 2 3.5\n",
        )
        assert read_matrix_market(p)[0, 1] == 3.5

    def test_bad_header(self, tmp_path):
        p = self._write(tmp_path, "%%NotMM matrix\n1 1 0\n")
        with pytest.raises(FormatError, match="header"):
            read_matrix_market(p)

    def test_array_layout_rejected(self, tmp_path):
        p = self._write(
            tmp_path, "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n"
        )
        with pytest.raises(FormatError, match="coordinate"):
            read_matrix_market(p)

    def test_entry_count_mismatch(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
        )
        with pytest.raises(FormatError, match="declares"):
            read_matrix_market(p)

    def test_out_of_bounds(self, tmp_path):
        p = self._write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
        )
        with pytest.raises(FormatError, match="bounds"):
            read_matrix_market(p)

    def test_empty_file(self, tmp_path):
        p = self._write(tmp_path, "")
        with pytest.raises(FormatError, match="empty"):
            read_matrix_market(p)
