"""Tests for matrix reordering."""

import numpy as np
import pytest
from scipy import sparse

from repro.matrices import bandwidth, row_stats
from repro.matrices.reorder import (
    Reordering,
    reverse_cuthill_mckee,
    sort_rows_by_length,
)


class TestRCM:
    def test_reduces_bandwidth(self, rng):
        # A banded matrix scrambled by a random permutation: RCM should
        # recover (most of) the band.
        n = 300
        base = sparse.diags(
            [np.ones(n - k) for k in (0, 1, 2)], [0, 1, 2]
        ).tocsr()
        p = rng.permutation(n)
        scrambled = base[p][:, p]
        reord = reverse_cuthill_mckee(scrambled)
        assert bandwidth(reord.matrix) < bandwidth(scrambled) / 4

    def test_multiply_round_trip(self, rng):
        A = sparse.random(120, 120, density=0.05, random_state=1, format="csr")
        reord = reverse_cuthill_mckee(A)
        x = rng.standard_normal(120)
        np.testing.assert_allclose(reord.multiply(x), A @ x, atol=1e-10)

    def test_rejects_rectangular(self):
        A = sparse.random(10, 20, density=0.3, random_state=0, format="csr")
        with pytest.raises(ValueError, match="square"):
            reverse_cuthill_mckee(A)

    def test_permutation_valid(self, random_matrix):
        A = random_matrix(nrows=60, ncols=60)
        reord = reverse_cuthill_mckee(A)
        assert sorted(reord.row_perm.tolist()) == list(range(60))
        assert (reord.row_perm == reord.col_perm).all()  # symmetric


class TestDegreeSort:
    def test_rows_become_monotone(self, skewed_matrix):
        reord = sort_rows_by_length(skewed_matrix)
        lengths = np.diff(reord.matrix.indptr)
        assert (np.diff(lengths) <= 0).all()

    def test_reduces_warp_divergence(self, skewed_matrix):
        before = row_stats(skewed_matrix).warp_divergence
        after = row_stats(sort_rows_by_length(skewed_matrix).matrix).warp_divergence
        assert after < before

    def test_multiply_round_trip(self, skewed_matrix, rng):
        reord = sort_rows_by_length(skewed_matrix)
        x = rng.standard_normal(skewed_matrix.shape[1])
        np.testing.assert_allclose(
            reord.multiply(x), skewed_matrix @ x, atol=1e-9
        )

    def test_columns_untouched(self, skewed_matrix):
        reord = sort_rows_by_length(skewed_matrix)
        assert (reord.col_perm == np.arange(skewed_matrix.shape[1])).all()


class TestInteroperation:
    def test_engine_on_reordered_matrix(self, rng):
        # The end-to-end pattern a user would run: reorder, tune on the
        # permuted matrix, permute/restore around each multiply.
        from repro import SpMVEngine
        from repro.tuning import TuningPoint

        A = sparse.random(200, 200, density=0.04, random_state=5, format="csr")
        reord = reverse_cuthill_mckee(A)
        eng = SpMVEngine("gtx680")
        prep = eng.prepare(reord.matrix, point=TuningPoint())
        x = rng.standard_normal(200)
        y_perm = eng.multiply(prep, reord.apply_to_vector(x)).y
        np.testing.assert_allclose(reord.restore_result(y_perm), A @ x, atol=1e-9)
