"""Tests for matrix statistics."""

import numpy as np
import pytest
from scipy import sparse

from repro.matrices import bandwidth, block_fill_ratio, row_stats


class TestRowStats:
    def test_uniform_rows(self, stencil_matrix):
        rs = row_stats(stencil_matrix)
        assert rs.mean == pytest.approx(stencil_matrix.nnz / 300)
        assert rs.gini < 0.01
        assert rs.warp_divergence < 1.05
        assert rs.min >= 2 and rs.max == 3

    def test_hub_row_detected(self, skewed_matrix):
        rs = row_stats(skewed_matrix)
        assert rs.max >= 300
        assert rs.warp_divergence > 2.0
        assert rs.ell_expansion > 10

    def test_gini_bounds(self, random_matrix):
        rs = row_stats(random_matrix())
        assert 0.0 <= rs.gini <= 1.0

    def test_empty_matrix(self):
        rs = row_stats(sparse.csr_matrix((5, 5)))
        assert rs.nnz == 0
        assert rs.mean == 0.0


class TestBlockFillRatio:
    def test_dense_blocks_fill_one(self):
        A = sparse.csr_matrix(np.ones((8, 8)))
        assert block_fill_ratio(A, 2, 2) == 1.0

    def test_diagonal_2x2_fill_two(self):
        A = sparse.identity(16, format="csr")
        assert block_fill_ratio(A, 2, 2) == pytest.approx(2.0)


class TestBandwidth:
    def test_tridiagonal(self, stencil_matrix):
        assert bandwidth(stencil_matrix) == 1

    def test_diagonal(self):
        assert bandwidth(sparse.identity(10, format="csr")) == 0

    def test_empty(self):
        assert bandwidth(sparse.csr_matrix((4, 4))) == 0
