"""Tests for the Table 2 suite specs."""

import pytest

from repro.errors import MatrixGenerationError
from repro.matrices import SUITE, get_spec, load_matrix, load_suite, row_stats


class TestSpecs:
    def test_twenty_matrices(self):
        assert len(SUITE) == 20

    def test_paper_metadata_recorded(self):
        lp = get_spec("LP")
        assert lp.rows == 4_000
        assert lp.cols == 1_100_000
        assert lp.nnz_per_row == 2825
        dense = get_spec("dense")  # case-insensitive
        assert dense.nnz == 4_000_000

    def test_unknown(self):
        with pytest.raises(MatrixGenerationError, match="unknown suite"):
            get_spec("Fluid")

    def test_scale_for_nnz(self):
        spec = get_spec("Circuit5M")
        s = spec.scale_for_nnz(100_000)
        assert 0 < s < 0.01
        assert get_spec("Circuit").scale_for_nnz(10**9) == 1.0

    def test_bad_scale(self):
        with pytest.raises(MatrixGenerationError, match="scale"):
            get_spec("QCD").load(scale=0.0)


class TestLoading:
    def test_nnz_per_row_preserved_under_scaling(self):
        for name in ("Protein", "FEM/Ship", "Economics"):
            spec = get_spec(name)
            A = spec.load(scale=spec.scale_for_nnz(40_000))
            mean = row_stats(A).mean
            assert 0.4 * spec.nnz_per_row < mean < 2.0 * spec.nnz_per_row, name

    def test_structural_classes(self):
        qcd = load_matrix("QCD", scale=0.05)
        assert row_stats(qcd).gini < 0.1  # stencil: regular
        web = load_matrix("Webbase", scale=0.02)
        assert row_stats(web).gini > 0.3  # power law: skewed

    def test_lp_is_wide(self):
        A = load_matrix("LP", scale=0.01)
        assert A.shape[1] > 50 * A.shape[0]

    def test_deterministic(self):
        a = load_matrix("Circuit", scale=0.05, seed=3)
        b = load_matrix("Circuit", scale=0.05, seed=3)
        assert (a != b).nnz == 0

    def test_load_suite_caps_nnz(self):
        suite = load_suite(cap_nnz=30_000)
        assert len(suite) == 20
        for name, A in suite.items():
            spec = get_spec(name)
            # The 64-row floor preserves nnz/row for extreme aspect
            # ratios (LP), which can exceed tiny caps by design.
            floor_nnz = 64 * spec.nnz_per_row * 1.1
            assert A.nnz <= max(30_000 * 1.3, floor_nnz), name
