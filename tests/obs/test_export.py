"""Exporter tests: JSON-lines round-trip, Prometheus text, console."""

import numpy as np
import pytest

from repro.obs import (
    Observer,
    Tracer,
    console_report,
    dump_jsonl,
    load_jsonl,
    prometheus_text,
    write_jsonl,
)


@pytest.fixture
def forest():
    """A two-root forest with nesting and mixed attribute types."""
    tr = Tracer()
    with tr.span("prepare", nnz=100, device="gtx680"):
        with tr.span("tune", mode="pruned"):
            with tr.span("candidate", index=0, sim_time_s=1.5e-6):
                pass
            with tr.span("candidate", index=1, sim_time_s=np.float64(2.5e-6)):
                pass
        with tr.span("convert"):
            pass
    with tr.span("multiply", gflops=7.25):
        pass
    return tr


def _shape(roots):
    """Structure-only view of a span forest (ignores timestamps/ids)."""
    return [
        (r.name, dict(r.attrs), _shape(r.children)) for r in roots
    ]


class TestJsonlRoundTrip:
    def test_same_span_tree(self, forest):
        roots = load_jsonl(dump_jsonl(forest))
        assert _shape(roots) == [
            ("prepare", {"nnz": 100, "device": "gtx680"}, [
                ("tune", {"mode": "pruned"}, [
                    ("candidate", {"index": 0, "sim_time_s": 1.5e-6}, []),
                    ("candidate", {"index": 1, "sim_time_s": 2.5e-6}, []),
                ]),
                ("convert", {}, []),
            ]),
            ("multiply", {"gflops": 7.25}, []),
        ]

    def test_ids_and_times_survive(self, forest):
        original = forest.spans()
        loaded = load_jsonl(dump_jsonl(forest))
        flat = [s for r in loaded for s in r.walk()]
        assert [s.span_id for s in flat] == [s.span_id for s in original]
        assert [s.t_start for s in flat] == [s.t_start for s in original]
        assert [s.t_end for s in flat] == [s.t_end for s in original]

    def test_accepts_observer_tracer_or_spans(self, forest):
        obs = Observer()
        obs.tracer = forest
        assert dump_jsonl(obs) == dump_jsonl(forest) == dump_jsonl(forest.roots)

    def test_write_and_reload_file(self, forest, tmp_path):
        path = tmp_path / "trace.jsonl"
        n = write_jsonl(forest, path)
        assert n == len(forest.spans()) == 6
        with open(path, encoding="utf-8") as fh:
            roots = load_jsonl(fh)
        assert _shape(roots) == _shape(forest.roots)

    def test_missing_parent_promotes_to_root(self):
        tr = Tracer()
        with tr.span("root"):
            with tr.span("child"):
                pass
        lines = dump_jsonl(tr).splitlines()
        orphaned = load_jsonl(lines[1])  # child line only
        assert len(orphaned) == 1
        assert orphaned[0].name == "child"

    def test_empty(self, tmp_path):
        assert dump_jsonl(Tracer()) == ""
        assert load_jsonl("") == []
        assert write_jsonl(Tracer(), tmp_path / "empty.jsonl") == 0


class TestPrometheusText:
    def test_counters_and_gauges(self):
        obs = Observer()
        obs.counter("plan.hits", "plan cache hits").inc(3)
        obs.gauge("depth").set(2, stage="tuned")
        text = prometheus_text(obs.metrics)
        assert "# HELP plan_hits plan cache hits" in text
        assert "# TYPE plan_hits counter" in text
        assert "plan_hits 3" in text
        assert 'depth{stage="tuned"} 2' in text

    def test_histogram_buckets(self):
        obs = Observer()
        h = obs.histogram("lat.s", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 20.0):
            h.observe(v)
        text = prometheus_text(obs.metrics)
        assert 'lat_s_bucket{le="1"} 1' in text
        assert 'lat_s_bucket{le="10"} 2' in text
        assert 'lat_s_bucket{le="+Inf"} 3' in text
        assert "lat_s_sum 22.5" in text
        assert "lat_s_count 3" in text

    def test_empty_registry(self):
        assert prometheus_text(Observer().metrics) == ""


class TestConsoleReport:
    def test_sections_present(self):
        obs = Observer()
        with obs.span("engine.multiply"):
            pass
        obs.counter("engine.multiplies").inc()
        text = console_report(obs, title="run")
        assert text.splitlines()[0] == "run"
        assert "spans:" in text
        assert "engine.multiply" in text
        assert "metrics:" in text
        assert "engine.multiplies" in text

    def test_empty_observer(self):
        text = console_report(Observer())
        assert "(no spans recorded)" in text
        assert "(no metrics recorded)" in text
