"""End-to-end observability: engine, tuner, and the fallback chain."""

import numpy as np
import pytest
from scipy import sparse

from repro import SpMVEngine
from repro.gpu import GTX680
from repro.obs import (
    NULL_OBSERVER,
    Observer,
    active_observer,
    dump_jsonl,
    load_jsonl,
)
from repro.tuning import AutoTuner


@pytest.fixture(scope="module")
def matrix():
    return sparse.random(
        120, 120, density=0.05, random_state=7, format="csr", dtype=np.float64
    )


@pytest.fixture
def x(matrix):
    return np.random.default_rng(0).standard_normal(matrix.shape[1])


class TestEngineObservability:
    def test_default_observer_is_null_and_ambient_restored(self, matrix, x):
        eng = SpMVEngine("gtx680")
        assert eng.observer is NULL_OBSERVER
        res = eng.multiply(eng.prepare(matrix), x)
        np.testing.assert_allclose(res.y, matrix @ x, atol=1e-9)
        assert active_observer() is NULL_OBSERVER

    def test_prepare_multiply_span_tree(self, matrix, x):
        obs = Observer()
        eng = SpMVEngine("gtx680", observer=obs)
        prep = eng.prepare(matrix)
        eng.multiply(prep, x)
        assert active_observer() is NULL_OBSERVER  # scope exited

        prepare = obs.tracer.find("engine.prepare")
        assert prepare is not None
        assert prepare.attrs["nnz"] == matrix.nnz
        assert prepare.find("tuner.tune") is not None
        assert prepare.find("format.convert") is not None
        multiply = obs.tracer.find("engine.multiply")
        assert multiply is not None
        assert multiply.find("kernel.yaspmv") is not None
        assert multiply.attrs["sim_time_s"] > 0

        m = obs.metrics
        assert m.get("engine.prepares").value() == 1
        assert m.get("engine.multiplies").value(backend="faithful") == 1
        assert m.get("tuner.evaluations").value() > 0
        assert m.get("kernel.executions").value(kernel="yaspmv") == 1

    def test_multiply_many_span(self, matrix):
        obs = Observer()
        eng = SpMVEngine("gtx680", observer=obs)
        X = np.random.default_rng(1).standard_normal((matrix.shape[1], 3))
        eng.multiply_many(eng.prepare(matrix), X)
        span = obs.tracer.find("engine.multiply_many")
        assert span is not None
        assert span.attrs["n_rhs"] == 3

    def test_spec_string_fault_plan_accepted(self, matrix, x):
        eng = SpMVEngine(
            "gtx680",
            fault_plan="stale_grp_sum:p=1.0,seed=7",
            validate=True,
            policy="permissive",
        )
        res = eng.multiply(eng.prepare(matrix), x)
        np.testing.assert_allclose(res.y, matrix @ x, atol=1e-9)


class TestFallbackChainMetrics:
    def test_injected_fault_counted_through_chain(self, matrix, x):
        obs = Observer()
        eng = SpMVEngine(
            "gtx680",
            observer=obs,
            fault_plan="nan_partial:p=1.0,count=1,seed=7",
            validate=True,
            policy="permissive",
        )
        res = eng.multiply(eng.prepare(matrix), x)
        np.testing.assert_allclose(res.y, matrix @ x, atol=1e-9)

        m = obs.metrics
        injections = m.get("fault.injections")
        assert injections is not None
        assert injections.value(site="kernel.nan_partial") >= 1
        assert m.get("fallback.stage_failed").value(stage="tuned") == 1
        # Some later stage succeeded, at depth > 1.
        used = m.get("fallback.stage_used")
        assert sum(v for _, v in used.items()) == 1
        assert m.get("fallback.depth").count() == 1
        assert m.get("fallback.depth").sum() >= 2

        attempts = obs.tracer.find_all("fallback.attempt")
        assert len(attempts) >= 2
        assert attempts[0].attrs["ok"] is False
        assert attempts[0].attrs["injected"] >= 1
        assert attempts[-1].attrs["ok"] is True

    def test_healthy_run_uses_tuned_stage(self, matrix, x):
        obs = Observer()
        eng = SpMVEngine(
            "gtx680", observer=obs, validate=True, policy="permissive"
        )
        eng.multiply(eng.prepare(matrix), x)
        assert obs.metrics.get("fallback.stage_used").value(stage="tuned") == 1
        assert obs.metrics.get("fault.injections") is None


class TestTunerObservability:
    def test_candidate_spans_match_history(self, matrix):
        obs = Observer()
        tuner = AutoTuner(GTX680, keep_history=True, observer=obs)
        result = tuner.tune(matrix)

        candidates = obs.tracer.find_all("tuner.candidate")
        evaluated = [c for c in candidates if "sim_time_s" in c.attrs]
        skipped = [c for c in candidates if c.attrs.get("skipped")]
        assert len(candidates) == result.evaluated + result.skipped
        assert len(evaluated) == result.evaluated == len(result.history)
        assert len(skipped) == result.skipped
        # Span order and values mirror the history exactly.
        assert [c.attrs["sim_time_s"] for c in evaluated] == [
            ev.time_s for ev in result.history
        ]
        assert obs.metrics.get("tuner.evaluations").value() == result.evaluated
        assert obs.metrics.get("tuner.prunes").value() == result.skipped
        assert (
            obs.metrics.get("tuner.plan_cache.misses").value()
            == result.cache_misses
        )

    def test_trace_identical_serial_vs_parallel(self, matrix):
        def run(workers):
            obs = Observer()
            tuner = AutoTuner(
                GTX680,
                workers=workers,
                executor="thread",
                keep_history=True,
                observer=obs,
            )
            tuner.tune(matrix)
            return [
                (
                    c.attrs["index"],
                    c.attrs["point"],
                    c.attrs.get("sim_time_s"),
                    c.attrs.get("skip_reason"),
                )
                for c in obs.tracer.find_all("tuner.candidate")
            ]

        assert run(1) == run(2)

    def test_parallel_trace_round_trips(self, matrix, tmp_path):
        obs = Observer()
        tuner = AutoTuner(
            GTX680, workers=2, executor="thread", keep_history=True, observer=obs
        )
        result = tuner.tune(matrix)
        roots = load_jsonl(dump_jsonl(obs))
        flat = [s for r in roots for s in r.walk()]
        spans = [s for s in flat if s.name == "tuner.candidate"]
        assert len(spans) == result.evaluated + result.skipped
        evaluated = [s for s in spans if "sim_time_s" in s.attrs]
        assert [s.attrs["sim_time_s"] for s in evaluated] == [
            ev.time_s for ev in result.history
        ]
        # Every candidate measured a real wall clock in its worker.
        assert all(s.attrs["wall_s"] >= 0 for s in spans)
