"""Unit tests for the metrics registry."""

import threading

import pytest

from repro.obs import MetricsRegistry


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, reg):
        c = reg.counter("hits")
        c.inc()
        c.inc(2)
        assert c.value() == 3

    def test_labels_are_independent(self, reg):
        c = reg.counter("stage")
        c.inc(stage="tuned")
        c.inc(3, stage="untuned")
        assert c.value(stage="tuned") == 1
        assert c.value(stage="untuned") == 3
        assert c.value(stage="other") == 0

    def test_negative_rejected(self, reg):
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.counter("c").inc(-1)

    def test_thread_safety(self, reg):
        c = reg.counter("n")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 4000


class TestGauge:
    def test_set_overwrites_add_accumulates(self, reg):
        g = reg.gauge("depth")
        g.set(5)
        g.set(2)
        assert g.value() == 2
        g.add(3)
        assert g.value() == 5


class TestHistogram:
    def test_count_sum_mean(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 20.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(22.5)
        assert h.mean() == pytest.approx(7.5)

    def test_bucket_counts_cumulative(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 20.0):
            h.observe(v)
        # le=1, le=10, +Inf -- cumulative, Prometheus style.
        assert h.bucket_counts() == [1, 2, 3]

    def test_empty_histogram(self, reg):
        h = reg.histogram("lat")
        assert h.count() == 0
        assert h.mean() == 0.0

    def test_needs_buckets(self, reg):
        with pytest.raises(ValueError, match="bucket"):
            reg.histogram("bad", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instance(self, reg):
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_rejected(self, reg):
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_get_unknown_is_none(self, reg):
        assert reg.get("nope") is None

    def test_as_dict(self, reg):
        reg.counter("c").inc(2, k="v")
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        d = reg.as_dict()
        assert d["c"] == {'{k="v"}': 2.0}
        assert d["h"] == {"": 0.5}
        assert d["h.count"] == {"": 1}

    def test_render_table_alignment_and_content(self, reg):
        reg.counter("short").inc()
        reg.counter("a.much.longer.name").inc(7, kind="x")
        text = reg.render_table()
        lines = text.splitlines()
        assert len(lines) == 2
        assert 'a.much.longer.name{kind="x"}  7' in text
        assert all("  " in line for line in lines)

    def test_render_table_empty(self, reg):
        assert "no metrics" in reg.render_table()
