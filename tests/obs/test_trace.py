"""Unit tests for the span tracer."""

import threading

from repro.obs import Span, Tracer


class TestSpan:
    def test_set_is_chainable(self):
        sp = Span(name="s", span_id=1)
        assert sp.set(a=1).set(b=2) is sp
        assert sp.attrs == {"a": 1, "b": 2}

    def test_duration_open_span_is_zero(self):
        sp = Span(name="s", span_id=1, t_start=5.0)
        assert sp.duration_s == 0.0
        sp.t_end = 7.5
        assert sp.duration_s == 2.5

    def test_walk_and_find(self):
        root = Span(name="root", span_id=1)
        a = Span(name="a", span_id=2, parent_id=1)
        b = Span(name="b", span_id=3, parent_id=1)
        a2 = Span(name="a", span_id=4, parent_id=3)
        root.children = [a, b]
        b.children = [a2]
        assert [s.span_id for s in root.walk()] == [1, 2, 3, 4]
        assert root.find("a") is a
        assert [s.span_id for s in root.find_all("a")] == [2, 4]
        assert root.find("missing") is None

    def test_dict_roundtrip(self):
        sp = Span(name="s", span_id=9, parent_id=3, t_start=1.0, t_end=2.0,
                  attrs={"k": "v", "n": 4})
        back = Span.from_dict(sp.to_dict())
        assert back == Span(name="s", span_id=9, parent_id=3, t_start=1.0,
                            t_end=2.0, attrs={"k": "v", "n": 4})

    def test_render_tree_shape(self):
        root = Span(name="outer", span_id=1, t_start=0.0, t_end=0.5)
        root.children.append(
            Span(name="inner", span_id=2, parent_id=1, t_start=0.1, t_end=0.2,
                 attrs={"x": 1})
        )
        text = root.render()
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "{x=1}" in lines[1]


class TestTracer:
    def test_nesting_follows_dynamic_extent(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner") as inner:
                assert tr.current() is inner
        assert tr.current() is None
        assert len(tr.roots) == 1
        root = tr.roots[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]
        assert root.children[0].parent_id == root.span_id

    def test_sibling_spans_share_parent(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("a"):
                pass
            with tr.span("b"):
                pass
        assert [c.name for c in tr.roots[0].children] == ["a", "b"]

    def test_span_closes_on_exception(self):
        tr = Tracer()
        try:
            with tr.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tr.roots[0].t_end is not None
        assert tr.current() is None

    def test_span_ids_are_unique(self):
        tr = Tracer()
        for _ in range(5):
            with tr.span("s"):
                pass
        ids = [s.span_id for s in tr.spans()]
        assert len(ids) == len(set(ids))

    def test_worker_threads_get_own_roots(self):
        tr = Tracer()

        def work():
            with tr.span("worker"):
                pass

        with tr.span("main"):
            threads = [threading.Thread(target=work) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Worker spans never attach to the main thread's open span.
        assert len(tr.roots) == 5
        main_root = next(r for r in tr.roots if r.name == "main")
        assert main_root.children == []
        for r in tr.roots:
            if r.name == "worker":
                assert "thread" in r.attrs

    def test_concurrent_spans_do_not_lose_records(self):
        tr = Tracer()

        def work(n):
            for _ in range(50):
                with tr.span(f"t{n}"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr.spans()) == 200

    def test_clear(self):
        tr = Tracer()
        with tr.span("s"):
            pass
        tr.clear()
        assert tr.spans() == []
