"""Property-based tests (hypothesis) on the format layer.

Strategy: generate arbitrary small sparse matrices (shape, pattern and
values all random) plus arbitrary format parameters, and assert the
universal contracts: lossless round trip, exact multiply, byte-count
consistency.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro.formats import (
    BCCOOMatrix,
    BCCOOPlusMatrix,
    bitflags as bf,
)
from repro.formats.delta import compress_columns, decompress_columns


@st.composite
def sparse_matrices(draw, max_dim=40):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, min(nrows * ncols, 80)))
    if nnz == 0:
        # Formats need at least one entry to be interesting; keep one.
        nnz = 1
    idx = draw(
        st.lists(
            st.tuples(st.integers(0, nrows - 1), st.integers(0, ncols - 1)),
            min_size=nnz,
            max_size=nnz,
        )
    )
    rows, cols = zip(*idx)
    vals = draw(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False).filter(lambda v: v != 0.0),
            min_size=nnz,
            max_size=nnz,
        )
    )
    A = sparse.coo_matrix(
        (vals, (rows, cols)), shape=(nrows, ncols)
    ).tocsr()
    A.sum_duplicates()
    A.eliminate_zeros()
    return A


@st.composite
def block_dims(draw):
    return draw(st.integers(1, 4)), draw(st.sampled_from([1, 2, 4]))


class TestBCCOOProperties:
    @given(A=sparse_matrices(), dims=block_dims(), word=st.sampled_from([8, 16, 32]))
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, A, dims, word):
        h, w = dims
        fmt = BCCOOMatrix.from_scipy(
            A, block_height=h, block_width=w, bit_word_dtype=np.dtype(f"uint{word}")
        )
        assert (fmt.to_scipy() != A).nnz == 0

    @given(A=sparse_matrices(), dims=block_dims(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_multiply_exact(self, A, dims, data):
        h, w = dims
        fmt = BCCOOMatrix.from_scipy(A, block_height=h, block_width=w)
        x = np.array(
            data.draw(
                st.lists(
                    st.floats(-100, 100, allow_nan=False),
                    min_size=A.shape[1],
                    max_size=A.shape[1],
                )
            )
        )
        np.testing.assert_allclose(fmt.multiply(x), A @ x, rtol=1e-9, atol=1e-6)

    @given(A=sparse_matrices(), slices=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_plus_round_trip(self, A, slices):
        fmt = BCCOOPlusMatrix.from_scipy(A, slice_count=slices, block_height=2, block_width=2)
        assert (fmt.to_scipy() != A).nnz == 0

    @given(A=sparse_matrices(), dims=block_dims())
    @settings(max_examples=40, deadline=None)
    def test_footprint_accounting_consistent(self, A, dims):
        h, w = dims
        fmt = BCCOOMatrix.from_scipy(A, block_height=h, block_width=w)
        fp = fmt.footprint()
        assert fp.total == sum(fp.arrays.values())
        assert fp.arrays["values"] == fmt.nblocks_padded * h * w * 4


class TestBitFlagProperties:
    @given(
        stops=st.lists(st.booleans(), min_size=1, max_size=300),
        word=st.sampled_from([8, 16, 32]),
        pad=st.integers(1, 64),
    )
    @settings(max_examples=100, deadline=None)
    def test_pack_unpack_identity(self, stops, word, pad):
        arr = np.array(stops, dtype=bool)
        packed = bf.pack(arr, np.dtype(f"uint{word}"), pad_multiple=pad)
        back = bf.unpack(packed)
        assert back[: len(stops)].tolist() == stops
        assert not back[len(stops):].any()

    @given(rows=st.lists(st.integers(0, 50), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_row_index_reconstruction_lossless(self, rows):
        block_row = np.sort(np.array(rows, dtype=np.int64))
        stops = bf.stops_from_block_rows(block_row)
        ordinals = bf.reconstruct_row_ordinals(stops)
        nonempty = np.unique(block_row)
        np.testing.assert_array_equal(nonempty[ordinals], block_row)


class TestDeltaProperties:
    @given(
        cols=st.lists(st.integers(0, 10_000_000), min_size=1, max_size=128),
        tile=st.sampled_from([1, 2, 4, 8, 16]),
    )
    @settings(max_examples=100, deadline=None)
    def test_compress_decompress_identity(self, cols, tile):
        arr = np.array(cols, dtype=np.int64)
        pad = (-arr.size) % tile
        arr = np.concatenate([arr, np.zeros(pad, dtype=np.int64)])
        dc = compress_columns(arr, tile)
        np.testing.assert_array_equal(decompress_columns(dc), arr)
