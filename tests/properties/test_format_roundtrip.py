"""Property-based round-trip contracts for the new cocktail formats.

Hypothesis generates arbitrary small sparse matrices plus arbitrary
format parameters and asserts the three contracts every
:class:`SparseFormat` in the cocktail must honour:

* **Lossless round trip** -- CSR -> format -> ``to_scipy()`` reproduces
  the matrix exactly (pattern and values, zero tolerance).
* **Validators catch mutations** -- corrupting the structural arrays
  (row pointers, team coordinates, group offsets, permutations) flips
  ``validate()`` to failed; ``raise_if_failed()`` raises the typed
  error.
* **``with_values`` is structure-preserving** -- the rebuilt format
  shares every structural array *by identity* with the original, and
  any pattern drift in the new matrix is rejected, never absorbed.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro.errors import ValidationError
from repro.formats import MergeCSRMatrix, RGCSRMatrix


@st.composite
def sparse_matrices(draw, max_dim=40):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, min(nrows * ncols, 80)))
    if nnz == 0:
        # Formats need at least one entry to be interesting; keep one.
        nnz = 1
    idx = draw(
        st.lists(
            st.tuples(st.integers(0, nrows - 1), st.integers(0, ncols - 1)),
            min_size=nnz,
            max_size=nnz,
        )
    )
    rows, cols = zip(*idx)
    vals = draw(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False).filter(lambda v: v != 0.0),
            min_size=nnz,
            max_size=nnz,
        )
    )
    A = sparse.coo_matrix(
        (vals, (rows, cols)), shape=(nrows, ncols)
    ).tocsr()
    A.sum_duplicates()
    A.eliminate_zeros()
    return A


def _revalued(A, seed):
    """Same pattern as ``A``, fresh non-zero values."""
    B = A.copy()
    rng = np.random.default_rng(seed)
    B.data = rng.uniform(0.5, 2.0, A.nnz) * np.sign(rng.standard_normal(A.nnz) + 3.0)
    return B


class TestMergeCSRProperties:
    @given(
        A=sparse_matrices(),
        team_nnz=st.sampled_from([None, 4, 8, 16, 64]),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, A, team_nnz):
        fmt = MergeCSRMatrix.from_scipy(A, team_nnz=team_nnz)
        assert (fmt.to_scipy() != A).nnz == 0
        fmt.validate().raise_if_failed()

    @given(A=sparse_matrices(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_validator_rejects_mutated_row_ptr(self, A, data):
        fmt = MergeCSRMatrix.from_scipy(A)
        i = data.draw(st.integers(1, fmt.nrows), label="ptr slot")
        fmt.row_ptr[i] = fmt.nnz + 7  # past the stream end
        report = fmt.validate()
        assert not report.ok
        with pytest.raises(ValidationError):
            report.raise_if_failed()

    @given(A=sparse_matrices(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_validator_rejects_mutated_team_rows(self, A, data):
        fmt = MergeCSRMatrix.from_scipy(A)
        t = data.draw(st.integers(0, fmt.team_rows.shape[0] - 1),
                      label="team")
        fmt.team_rows[t] = fmt.nrows + 1
        assert not fmt.validate().ok

    @given(A=sparse_matrices(), seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_with_values_shares_structure(self, A, seed):
        fmt = MergeCSRMatrix.from_scipy(A)
        B = _revalued(A, seed)
        fmt2 = fmt.with_values(B)
        assert fmt2.row_ptr is fmt.row_ptr
        assert fmt2.col_index is fmt.col_index
        assert fmt2.team_rows is fmt.team_rows
        assert fmt2.team_nnz == fmt.team_nnz
        assert (fmt2.to_scipy() != B).nnz == 0
        # The original is untouched -- with_values copies, never mutates.
        assert (fmt.to_scipy() != A).nnz == 0

    @given(A=sparse_matrices())
    @settings(max_examples=40, deadline=None)
    def test_with_values_rejects_pattern_drift(self, A):
        fmt = MergeCSRMatrix.from_scipy(A)
        drifted = A.copy().tolil()
        r, c = A.shape[0] - 1, A.shape[1] - 1
        if drifted[r, c] != 0:
            drifted[r, c] = 0
        else:
            drifted[r, c] = 1.0
        with pytest.raises(ValidationError):
            fmt.with_values(drifted.tocsr())


class TestRGCSRProperties:
    @given(A=sparse_matrices())
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, A):
        fmt = RGCSRMatrix.from_scipy(A)
        assert (fmt.to_scipy() != A).nnz == 0
        fmt.validate().raise_if_failed()

    @given(A=sparse_matrices(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_validator_rejects_mutated_group_offsets(self, A, data):
        fmt = RGCSRMatrix.from_scipy(A)
        g = data.draw(st.integers(1, fmt.n_groups), label="group slot")
        fmt.group_row_offsets[g] = fmt.n_packed_rows + 3
        report = fmt.validate()
        assert not report.ok
        with pytest.raises(ValidationError):
            report.raise_if_failed()

    @given(A=sparse_matrices(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_validator_rejects_broken_permutation(self, A, data):
        fmt = RGCSRMatrix.from_scipy(A)
        if fmt.row_perm.size < 2:
            return  # a 1-row permutation cannot be made non-bijective
        i = data.draw(st.integers(1, fmt.row_perm.size - 1), label="slot")
        fmt.row_perm[i] = fmt.row_perm[0]  # duplicate => not bijective
        assert not fmt.validate().ok

    @given(A=sparse_matrices(), seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_with_values_shares_structure(self, A, seed):
        fmt = RGCSRMatrix.from_scipy(A)
        B = _revalued(A, seed)
        fmt2 = fmt.with_values(B)
        assert fmt2.row_perm is fmt.row_perm
        assert fmt2.row_lengths is fmt.row_lengths
        assert fmt2.group_row_offsets is fmt.group_row_offsets
        assert fmt2.group_data_offsets is fmt.group_data_offsets
        assert fmt2.group_widths is fmt.group_widths
        assert fmt2.col_index is fmt.col_index
        assert (fmt2.to_scipy() != B).nnz == 0
        assert (fmt.to_scipy() != A).nnz == 0

    @given(A=sparse_matrices())
    @settings(max_examples=40, deadline=None)
    def test_with_values_rejects_pattern_drift(self, A):
        fmt = RGCSRMatrix.from_scipy(A)
        drifted = A.copy().tolil()
        r, c = A.shape[0] - 1, A.shape[1] - 1
        if drifted[r, c] != 0:
            drifted[r, c] = 0
        else:
            drifted[r, c] = 1.0
        with pytest.raises(ValidationError):
            fmt.with_values(drifted.tocsr())


class TestMultiplyProperty:
    @given(A=sparse_matrices(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_multiply_matches_csr_fold(self, A, data):
        x = np.array(
            data.draw(
                st.lists(
                    st.floats(-100, 100, allow_nan=False),
                    min_size=A.shape[1],
                    max_size=A.shape[1],
                )
            )
        )
        rows = np.repeat(np.arange(A.shape[0]), np.diff(A.indptr))
        ref = np.bincount(
            rows, weights=A.data * x[A.indices], minlength=A.shape[0]
        )
        for fmt_cls in (MergeCSRMatrix, RGCSRMatrix):
            y = fmt_cls.from_scipy(A).multiply(x)
            assert np.array_equal(y, ref), fmt_cls.__name__
