"""Property-based tests on IO and the partitioned/layout machinery."""

import numpy as np
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro.formats import CocktailMatrix
from repro.formats.layout import from_device_order, to_device_order
from repro.matrices import read_matrix_market, write_matrix_market


@st.composite
def small_matrices(draw):
    nrows = draw(st.integers(1, 25))
    ncols = draw(st.integers(1, 25))
    nnz = draw(st.integers(1, 50))
    entries = draw(
        st.lists(
            st.tuples(
                st.integers(0, nrows - 1),
                st.integers(0, ncols - 1),
                st.floats(-1e6, 1e6, allow_nan=False).filter(lambda v: v != 0),
            ),
            min_size=nnz,
            max_size=nnz,
        )
    )
    r, c, v = zip(*entries)
    A = sparse.coo_matrix((v, (r, c)), shape=(nrows, ncols)).tocsr()
    A.sum_duplicates()
    A.eliminate_zeros()
    return A


class TestMatrixMarketProperties:
    @given(A=small_matrices())
    @settings(max_examples=50, deadline=None)
    def test_write_read_identity(self, A, tmp_path_factory):
        path = tmp_path_factory.mktemp("mm") / "m.mtx"
        write_matrix_market(path, A)
        B = read_matrix_market(path)
        assert B.shape == A.shape
        np.testing.assert_allclose(B.toarray(), A.toarray(), rtol=1e-15)


class TestCocktailProperties:
    @given(A=small_matrices())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_and_multiply(self, A):
        if A.nnz == 0:
            return
        fmt = CocktailMatrix.from_scipy(A)
        assert (fmt.to_scipy() != A).nnz == 0
        x = np.linspace(-1, 1, A.shape[1])
        np.testing.assert_allclose(
            fmt.multiply(x), A @ x, rtol=1e-9, atol=1e-7
        )


class TestLayoutProperties:
    @given(
        n_wg=st.integers(1, 4),
        wg=st.sampled_from([2, 4, 8, 32]),
        tile=st.integers(1, 8),
        lanes=st.integers(0, 2),
    )
    @settings(max_examples=80, deadline=None)
    def test_device_order_is_involution(self, n_wg, wg, tile, lanes):
        n = n_wg * wg * tile
        rng = np.random.default_rng(n)
        shape = (n,) if lanes == 0 else (n,) + (2,) * lanes
        blocks = rng.standard_normal(shape)
        dev = to_device_order(blocks, wg, tile)
        back = from_device_order(dev, wg, tile)
        np.testing.assert_array_equal(back, blocks)
        # The permutation is measure-preserving: same multiset of values.
        np.testing.assert_allclose(
            np.sort(dev.ravel()), np.sort(blocks.ravel())
        )
