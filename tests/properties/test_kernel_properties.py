"""Property-based tests on the yaSpMV kernel.

The strongest invariant in the repository: for arbitrary matrices and
arbitrary valid launch configurations, the closed-form fast kernel, the
faithful Figures-9-12 executor, and scipy's reference multiply agree.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro.formats import BCCOOMatrix
from repro.gpu import GTX680
from repro.kernels import YaSpMVConfig, YaSpMVKernel, yaspmv_faithful

KERNEL = YaSpMVKernel()


@st.composite
def problem(draw):
    nrows = draw(st.integers(1, 30))
    ncols = draw(st.integers(1, 30))
    nnz = draw(st.integers(1, 60))
    entries = draw(
        st.lists(
            st.tuples(
                st.integers(0, nrows - 1),
                st.integers(0, ncols - 1),
                st.floats(-50, 50, allow_nan=False).filter(lambda v: v != 0),
            ),
            min_size=nnz,
            max_size=nnz,
        )
    )
    r, c, v = zip(*entries)
    A = sparse.coo_matrix((v, (r, c)), shape=(nrows, ncols)).tocsr()
    A.sum_duplicates()
    A.eliminate_zeros()
    x = np.array(
        draw(
            st.lists(
                st.floats(-10, 10, allow_nan=False),
                min_size=ncols,
                max_size=ncols,
            )
        )
    )
    return A, x


@st.composite
def configs(draw):
    strategy = draw(st.sampled_from([1, 2]))
    return YaSpMVConfig(
        workgroup_size=32,
        strategy=strategy,
        reg_size=draw(st.sampled_from([1, 2, 4])),
        shm_size=draw(st.sampled_from([0, 1])),
        tile_size=draw(st.sampled_from([1, 2, 4, 8])),
        result_cache_multiple=draw(st.sampled_from([1, 2])),
        fine_grain=draw(st.booleans()),
        cross_wg=draw(st.sampled_from(["adjacent", "second_kernel"])),
        use_texture=draw(st.booleans()),
    )


@st.composite
def block_shapes(draw):
    return draw(st.integers(1, 4)), draw(st.sampled_from([1, 2, 4]))


class TestKernelAgreement:
    @given(p=problem(), cfg=configs(), blocks=block_shapes())
    @settings(max_examples=60, deadline=None)
    def test_fast_equals_faithful_equals_scipy(self, p, cfg, blocks):
        A, x = p
        if A.nnz == 0:
            return
        h, w = blocks
        fmt = BCCOOMatrix.from_scipy(A, block_height=h, block_width=w)
        fast = KERNEL.run(fmt, x, GTX680, config=cfg).y
        slow = yaspmv_faithful(fmt, x, cfg)
        expected = A @ x
        np.testing.assert_allclose(fast, expected, rtol=1e-8, atol=1e-6)
        np.testing.assert_allclose(slow, fast, rtol=1e-9, atol=1e-9)

    @given(p=problem(), cfg=configs())
    @settings(max_examples=40, deadline=None)
    def test_stats_invariants(self, p, cfg):
        A, x = p
        if A.nnz == 0:
            return
        fmt = BCCOOMatrix.from_scipy(A)
        stats = KERNEL.run(fmt, x, GTX680, config=cfg).stats
        assert stats.dram_read_bytes > 0
        assert stats.flops >= 2 * fmt.nblocks  # at least the products
        assert stats.n_workgroups >= 1
        assert 0 < stats.simd_efficiency <= 1
        # Equal tiles: never an imbalance profile.
        assert stats.workgroup_work is None


class TestSpMMAgreement:
    @given(p=problem(), k=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_spmm_equals_column_multiplies(self, p, k):
        from repro.kernels.yaspmv import YaSpMMKernel

        A, x = p
        if A.nnz == 0:
            return
        rng = np.random.default_rng(abs(hash((A.nnz, k))) % (1 << 31))
        X = rng.standard_normal((A.shape[1], k))
        fmt = BCCOOMatrix.from_scipy(A)
        cfg = YaSpMVConfig(workgroup_size=32, tile_size=4)
        multi = YaSpMMKernel().run_multi(fmt, X, GTX680, config=cfg)
        np.testing.assert_allclose(multi.y, A @ X, rtol=1e-8, atol=1e-6)
        for j in range(k):
            single = KERNEL.run(fmt, X[:, j], GTX680, config=cfg).y
            np.testing.assert_allclose(multi.y[:, j], single, atol=1e-12)
