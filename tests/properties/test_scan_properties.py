"""Property-based tests on the segmented-scan implementations.

The central invariant: every parallel formulation (tree-based,
matrix-based, the Grp_sum chain) computes exactly what the sequential
reference computes, for arbitrary values and flag patterns.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpu import chain_carries
from repro.scan import (
    matrix_segmented_scan,
    segment_sums_by_stops,
    segmented_scan_inclusive,
    starts_from_stops,
    tree_segmented_scan,
)

values_and_flags = st.integers(1, 200).flatmap(
    lambda n: st.tuples(
        st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=n, max_size=n),
        st.lists(st.booleans(), min_size=n, max_size=n),
    )
)


class TestScanEquivalence:
    @given(vf=values_and_flags)
    @settings(max_examples=150, deadline=None)
    def test_tree_equals_reference(self, vf):
        vals, flags = vf
        v = np.array(vals)
        starts = np.array(flags, dtype=bool)
        got, _ = tree_segmented_scan(v, starts)
        np.testing.assert_allclose(
            got, segmented_scan_inclusive(v, starts), rtol=1e-9, atol=1e-6
        )

    @given(vf=values_and_flags, threads=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=150, deadline=None)
    def test_matrix_equals_reference(self, vf, threads):
        vals, flags = vf
        v = np.array(vals)
        starts = np.array(flags, dtype=bool)
        pad = (-v.size) % threads
        v = np.concatenate([v, np.zeros(pad)])
        starts = np.concatenate([starts, np.zeros(pad, dtype=bool)])
        got, _ = matrix_segmented_scan(v, starts, threads)
        np.testing.assert_allclose(
            got, segmented_scan_inclusive(v, starts), rtol=1e-9, atol=1e-6
        )

    @given(vf=values_and_flags)
    @settings(max_examples=100, deadline=None)
    def test_stop_sums_equal_scan_at_stops(self, vf):
        vals, flags = vf
        v = np.array(vals)
        stops = np.array(flags, dtype=bool)
        sums = segment_sums_by_stops(v, stops)
        scan = segmented_scan_inclusive(v, starts_from_stops(stops))
        np.testing.assert_allclose(
            sums, scan[stops], rtol=1e-9, atol=1e-6
        )


class TestChainProperties:
    @given(vf=values_and_flags)
    @settings(max_examples=100, deadline=None)
    def test_grp_sum_is_segmented_scan(self, vf):
        vals, flags = vf
        lp = np.array(vals)
        hs = np.array(flags, dtype=bool)
        _, grp = chain_carries(lp, hs)
        starts = hs.copy()
        starts[0] = True
        np.testing.assert_allclose(
            grp, segmented_scan_inclusive(lp, starts), rtol=1e-9, atol=1e-6
        )

    @given(vf=values_and_flags)
    @settings(max_examples=100, deadline=None)
    def test_carry_is_previous_grp_sum(self, vf):
        vals, flags = vf
        lp = np.array(vals)
        hs = np.array(flags, dtype=bool)
        carry, grp = chain_carries(lp, hs)
        assert carry[0] == 0.0
        np.testing.assert_allclose(carry[1:], grp[:-1], rtol=1e-12)


class TestBlellochEquivalence:
    @given(vf=values_and_flags)
    @settings(max_examples=150, deadline=None)
    def test_blelloch_equals_reference(self, vf):
        from repro.scan import blelloch_segmented_scan

        vals, flags = vf
        v = np.array(vals)
        starts = np.array(flags, dtype=bool)
        got, _ = blelloch_segmented_scan(v, starts)
        np.testing.assert_allclose(
            got, segmented_scan_inclusive(v, starts), rtol=1e-9, atol=1e-6
        )

    @given(vf=values_and_flags)
    @settings(max_examples=60, deadline=None)
    def test_all_scans_agree(self, vf):
        from repro.scan import blelloch_segmented_scan

        vals, flags = vf
        v = np.array(vals)
        starts = np.array(flags, dtype=bool)
        hs, _ = tree_segmented_scan(v, starts)
        bl, _ = blelloch_segmented_scan(v, starts)
        np.testing.assert_allclose(bl, hs, rtol=1e-9, atol=1e-6)
