"""Property-based tests on the serving layer.

For arbitrary sparse matrices, arbitrary request vectors, and arbitrary
interleavings of requests across matrices, micro-batched serving returns
-- per request -- the **bit-identical** vector a sequential
``engine.multiply`` would, for BCCOO and BCCOO+ under both scan
strategies.  This is the serving layer's differential invariant driven
by generated inputs instead of the fixed grid in
``tests/serve/test_differential.py``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro import ServeConfig, SpMVEngine, SpMVServer
from repro.tuning import TuningPoint


@st.composite
def problems(draw):
    """A pool of matrices plus an interleaved request schedule."""
    nrows = draw(st.integers(4, 24))
    ncols = draw(st.integers(4, 24))
    n_matrices = draw(st.integers(1, 3))
    mats = []
    for m in range(n_matrices):
        nnz = draw(st.integers(1, 40))
        entries = draw(
            st.lists(
                st.tuples(
                    st.integers(0, nrows - 1),
                    st.integers(0, ncols - 1),
                    st.floats(-50, 50, allow_nan=False).filter(lambda v: v != 0),
                ),
                min_size=nnz,
                max_size=nnz,
            )
        )
        r, c, v = zip(*entries)
        A = sparse.coo_matrix((v, (r, c)), shape=(nrows, ncols)).tocsr()
        A.sum_duplicates()
        A.eliminate_zeros()
        mats.append(A)
    # Interleaving: which matrix each successive request targets.
    schedule = draw(
        st.lists(st.integers(0, n_matrices - 1), min_size=1, max_size=12)
    )
    xs = [
        np.array(
            draw(
                st.lists(
                    st.floats(-10, 10, allow_nan=False),
                    min_size=ncols,
                    max_size=ncols,
                )
            )
        )
        for _ in schedule
    ]
    return mats, schedule, xs


@st.composite
def points(draw):
    """BCCOO or BCCOO+ under either scan strategy / compute strategy."""
    return TuningPoint(
        block_height=draw(st.sampled_from([1, 2])),
        block_width=draw(st.sampled_from([1, 2])),
        slice_count=draw(st.sampled_from([1, 2, 4])),
    ).with_kernel(
        workgroup_size=64,
        strategy=draw(st.sampled_from([1, 2])),
        scan_mode=draw(st.sampled_from(["matrix", "tree"])),
    )


@given(problem=problems(), point=points())
@settings(max_examples=40, deadline=None)
def test_batched_serving_bit_identical_to_sequential(problem, point):
    mats, schedule, xs = problem
    engine = SpMVEngine()
    prepared = [engine.prepare(A, point=point) for A in mats]
    srv = SpMVServer(
        engine,
        ServeConfig(max_batch=len(schedule), batch_window_s=0.0),
        start=False,
    )
    futs = [
        srv.submit(prepared[m], x) for m, x in zip(schedule, xs)
    ]
    srv.drain()
    for m, x, fut in zip(schedule, xs, futs):
        served = fut.result().y
        sequential = engine.multiply(prepared[m], x).y
        assert np.array_equal(served, sequential)
    # No lost or duplicated responses, and the per-request cache
    # accounting reconciles exactly.
    assert srv.n_responses == len(schedule)
    assert srv.cache.hits + srv.cache.misses == len(schedule)
    srv.close()


@given(problem=problems())
@settings(max_examples=25, deadline=None)
def test_served_answers_match_scipy(problem):
    """Auto-tuned end-to-end: served output equals the scipy product."""
    mats, schedule, xs = problem
    engine = SpMVEngine()
    prepared = [engine.prepare(A) for A in mats]
    srv = SpMVServer(engine, ServeConfig(batch_window_s=0.0), start=False)
    futs = [srv.submit(prepared[m], x) for m, x in zip(schedule, xs)]
    srv.drain()
    for m, x, fut in zip(schedule, xs, futs):
        assert np.allclose(
            fut.result().y, mats[m] @ x, rtol=1e-9, atol=1e-9
        )
    srv.close()
