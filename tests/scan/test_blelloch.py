"""Tests for the work-efficient (Blelloch/Sengupta) segmented scan."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.scan import (
    blelloch_segmented_scan,
    segmented_scan_inclusive,
    starts_from_stops,
    tree_segmented_scan,
)


class TestCorrectness:
    def test_figure7(self):
        inp = np.array([3, 2, 0, 2, 1, 0, 4, 2, 4, 3, 2, 2, 0, 1, 3, 1], dtype=float)
        bits = np.array([1, 1, 1, 1, 0, 1, 0, 1, 1, 0, 1, 1, 1, 1, 1, 0])
        starts = starts_from_stops(bits == 0)
        got, _ = blelloch_segmented_scan(inp, starts)
        assert got.tolist() == [3, 5, 5, 7, 8, 0, 4, 2, 6, 9, 2, 4, 4, 5, 8, 9]

    def test_matches_reference_random(self, rng):
        for _ in range(50):
            n = int(rng.integers(1, 200))
            v = rng.standard_normal(n)
            starts = rng.random(n) < 0.25
            starts[0] = bool(rng.random() < 0.8)
            ref = segmented_scan_inclusive(v, starts)
            got, _ = blelloch_segmented_scan(v, starts)
            np.testing.assert_allclose(got, ref, atol=1e-9)

    def test_non_power_of_two(self, rng):
        v = rng.standard_normal(100)
        starts = np.zeros(100, dtype=bool)
        starts[0] = True
        got, _ = blelloch_segmented_scan(v, starts)
        np.testing.assert_allclose(got, np.cumsum(v), atol=1e-9)

    def test_2d_lanes(self, rng):
        v = rng.standard_normal((48, 2))
        starts = rng.random(48) < 0.2
        starts[0] = True
        got, _ = blelloch_segmented_scan(v, starts)
        np.testing.assert_allclose(got, segmented_scan_inclusive(v, starts))

    def test_single_element(self):
        got, st = blelloch_segmented_scan(np.array([7.0]), np.array([True]))
        assert got.tolist() == [7.0]

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            blelloch_segmented_scan(np.zeros(4), np.zeros(3, dtype=bool))


class TestWorkEfficiency:
    def test_linear_work(self):
        # O(n) combines versus Hillis-Steele's O(n log n).
        n = 1024
        starts = np.zeros(n, dtype=bool)
        starts[0] = True
        _, bl = blelloch_segmented_scan(np.ones(n), starts)
        _, hs = tree_segmented_scan(np.ones(n), starts)
        assert bl.element_ops < 2 * n
        assert hs.element_ops > 5 * n

    def test_twice_the_stages(self):
        n = 256
        starts = np.ones(n, dtype=bool)
        _, bl = blelloch_segmented_scan(np.ones(n), starts)
        _, hs = tree_segmented_scan(np.ones(n), starts)
        assert bl.steps == 2 * hs.steps

    def test_idle_lanes_near_root(self):
        # At depth k only n/2^k pairs are active but a half-wave is
        # scheduled: substantial idling -- the paper's critique.
        n = 1024
        starts = np.zeros(n, dtype=bool)
        starts[0] = True
        _, st = blelloch_segmented_scan(np.ones(n), starts)
        assert st.idle_fraction > 0.5
