"""Tests for flag conversions."""

import numpy as np
import pytest

from repro.scan.flags import segment_ids, starts_from_stops, stops_from_starts


class TestStartsFromStops:
    def test_basic(self):
        stops = np.array([0, 0, 1, 0, 1], dtype=bool)
        assert starts_from_stops(stops).astype(int).tolist() == [1, 0, 0, 1, 0]

    def test_first_always_start(self):
        assert starts_from_stops(np.zeros(4, dtype=bool))[0]

    def test_empty(self):
        assert starts_from_stops(np.array([], dtype=bool)).size == 0

    def test_figure7_flags(self):
        bits = np.array([1, 1, 1, 1, 0, 1, 0, 1, 1, 0, 1, 1, 1, 1, 1, 0])
        starts = starts_from_stops(bits == 0)
        expected = [1, 0, 0, 0, 0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 0, 0]
        assert starts.astype(int).tolist() == expected


class TestStopsFromStarts:
    def test_inverse_up_to_open_tail(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 60))
            stops = rng.random(n) < 0.3
            stops[-1] = True  # closed tail is recoverable
            starts = starts_from_stops(stops)
            np.testing.assert_array_equal(stops_from_starts(starts), stops)

    def test_last_always_stop(self):
        assert stops_from_starts(np.array([True, False, False]))[-1]


class TestSegmentIds:
    def test_flagged_zero_based(self):
        starts = np.array([1, 0, 1, 0, 0, 1], dtype=bool)
        assert segment_ids(starts).tolist() == [0, 0, 1, 1, 1, 2]

    def test_leading_continuation(self):
        starts = np.array([0, 0, 1, 0], dtype=bool)
        assert segment_ids(starts).tolist() == [0, 0, 1, 1]

    def test_empty(self):
        assert segment_ids(np.array([], dtype=bool)).size == 0
