"""Tests for the matrix-based segmented scan."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.scan import matrix_segmented_scan, segmented_scan_inclusive


class TestCorrectness:
    @pytest.mark.parametrize("threads", [1, 2, 4, 8, 16])
    def test_matches_reference(self, threads, rng):
        for _ in range(10):
            tiles = int(rng.integers(1, 8))
            n = threads * tiles * 4
            v = rng.standard_normal(n)
            starts = rng.random(n) < 0.2
            starts[0] = True
            expected = segmented_scan_inclusive(v, starts)
            got, _ = matrix_segmented_scan(v, starts, threads)
            np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_segment_spanning_many_tiles(self):
        # One segment across the whole array: the carry chain must
        # thread through every tile.
        n = 32
        v = np.ones(n)
        starts = np.zeros(n, dtype=bool)
        starts[0] = True
        got, stats = matrix_segmented_scan(v, starts, 8)
        np.testing.assert_allclose(got, np.arange(1, n + 1))
        assert stats.carry_fixups == 7  # every thread but 0

    def test_2d_lanes(self, rng):
        v = rng.standard_normal((24, 3))
        starts = rng.random(24) < 0.3
        starts[0] = True
        got, _ = matrix_segmented_scan(v, starts, 4)
        np.testing.assert_allclose(got, segmented_scan_inclusive(v, starts))


class TestStats:
    def test_sequential_ops_equal_n(self, rng):
        v = rng.standard_normal(64)
        starts = rng.random(64) < 0.3
        _, stats = matrix_segmented_scan(v, starts, 8)
        assert stats.sequential_ops == 64
        assert stats.threads == 8
        assert stats.tile == 8

    def test_parallel_scan_skipped_when_every_tile_has_start(self):
        # Force a start in every tile of 4.
        starts = np.zeros(32, dtype=bool)
        starts[::4] = True
        _, stats = matrix_segmented_scan(np.ones(32), starts, 8)
        assert stats.parallel_scan_skipped
        assert stats.parallel_scan is None

    def test_parallel_scan_runs_otherwise(self):
        starts = np.zeros(32, dtype=bool)
        starts[0] = True  # only the first tile has a start
        _, stats = matrix_segmented_scan(np.ones(32), starts, 8)
        assert not stats.parallel_scan_skipped
        assert stats.parallel_scan is not None
        assert stats.parallel_scan.n == 8  # scan over threads, not elements


class TestValidation:
    def test_indivisible_length(self):
        with pytest.raises(ReproError, match="multiple"):
            matrix_segmented_scan(np.zeros(10), np.zeros(10, dtype=bool), 4)

    def test_bad_threads(self):
        with pytest.raises(ReproError, match="num_threads"):
            matrix_segmented_scan(np.zeros(8), np.zeros(8, dtype=bool), 0)

    def test_length_mismatch(self):
        with pytest.raises(ReproError, match="length"):
            matrix_segmented_scan(np.zeros(8), np.zeros(9, dtype=bool), 4)
