"""Tests for the sequential reference segmented primitives."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.scan import (
    segment_sums_by_stops,
    segmented_scan_exclusive,
    segmented_scan_inclusive,
    segmented_sum,
    starts_from_stops,
)

FIG7_INPUT = np.array([3, 2, 0, 2, 1, 0, 4, 2, 4, 3, 2, 2, 0, 1, 3, 1], dtype=float)
FIG7_BITS = np.array([1, 1, 1, 1, 0, 1, 0, 1, 1, 0, 1, 1, 1, 1, 1, 0])
FIG7_RESULT = [3, 5, 5, 7, 8, 0, 4, 2, 6, 9, 2, 4, 4, 5, 8, 9]


class TestInclusive:
    def test_figure7(self):
        starts = starts_from_stops(FIG7_BITS == 0)
        res = segmented_scan_inclusive(FIG7_INPUT, starts)
        assert res.tolist() == FIG7_RESULT

    def test_single_segment_is_cumsum(self, rng):
        v = rng.standard_normal(50)
        starts = np.zeros(50, dtype=bool)
        starts[0] = True
        np.testing.assert_allclose(
            segmented_scan_inclusive(v, starts), np.cumsum(v)
        )

    def test_all_starts_is_identity(self, rng):
        v = rng.standard_normal(30)
        np.testing.assert_allclose(
            segmented_scan_inclusive(v, np.ones(30, dtype=bool)), v
        )

    def test_leading_continuation_run(self):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        starts = np.array([0, 0, 1, 0], dtype=bool)
        res = segmented_scan_inclusive(v, starts)
        assert res.tolist() == [1.0, 3.0, 3.0, 7.0]

    def test_2d_lanes_scan_independently(self, rng):
        v = rng.standard_normal((40, 3))
        starts = rng.random(40) < 0.3
        starts[0] = True
        res = segmented_scan_inclusive(v, starts)
        for lane in range(3):
            np.testing.assert_allclose(
                res[:, lane], segmented_scan_inclusive(v[:, lane], starts)
            )

    def test_length_mismatch(self):
        with pytest.raises(ReproError, match="length"):
            segmented_scan_inclusive(np.zeros(3), np.zeros(4, dtype=bool))

    def test_empty(self):
        out = segmented_scan_inclusive(np.zeros(0), np.zeros(0, dtype=bool))
        assert out.size == 0


class TestExclusive:
    def test_shifts_by_self(self, rng):
        v = rng.standard_normal(25)
        starts = rng.random(25) < 0.3
        starts[0] = True
        inc = segmented_scan_inclusive(v, starts)
        exc = segmented_scan_exclusive(v, starts)
        np.testing.assert_allclose(exc, inc - v)

    def test_zero_at_starts(self, rng):
        v = rng.standard_normal(25)
        starts = rng.random(25) < 0.4
        starts[0] = True
        exc = segmented_scan_exclusive(v, starts)
        np.testing.assert_allclose(exc[starts], 0.0, atol=1e-12)


class TestSegmentedSum:
    def test_figure7_totals(self):
        starts = starts_from_stops(FIG7_BITS == 0)
        sums = segmented_sum(FIG7_INPUT, starts)
        assert sums.tolist() == [8.0, 4.0, 9.0, 9.0]

    def test_matches_bincount(self, rng):
        v = rng.standard_normal(100)
        starts = rng.random(100) < 0.2
        starts[0] = True
        ids = np.cumsum(starts) - 1
        expected = np.bincount(ids, weights=v)
        np.testing.assert_allclose(segmented_sum(v, starts), expected)


class TestSegmentSumsByStops:
    def test_trailing_open_segment_dropped(self):
        v = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        stops = np.array([0, 1, 0, 0, 0], dtype=bool)
        assert segment_sums_by_stops(v, stops).tolist() == [3.0]

    def test_figure7(self):
        sums = segment_sums_by_stops(FIG7_INPUT, FIG7_BITS == 0)
        assert sums.tolist() == [8.0, 4.0, 9.0, 9.0]

    def test_2d(self, rng):
        v = rng.standard_normal((20, 2))
        stops = rng.random(20) < 0.3
        out = segment_sums_by_stops(v, stops)
        assert out.shape == (int(stops.sum()), 2)

    def test_no_stops_no_output(self, rng):
        v = rng.standard_normal(10)
        out = segment_sums_by_stops(v, np.zeros(10, dtype=bool))
        assert out.shape[0] == 0

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            segment_sums_by_stops(np.zeros(3), np.zeros(2, dtype=bool))
