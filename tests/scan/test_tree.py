"""Tests for the lockstep tree-based segmented scan."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.scan import segmented_scan_inclusive, tree_segmented_scan


class TestCorrectness:
    def test_matches_reference(self, rng):
        for _ in range(30):
            n = int(rng.integers(1, 200))
            v = rng.standard_normal(n)
            starts = rng.random(n) < 0.25
            starts[0] = True
            expected = segmented_scan_inclusive(v, starts)
            got, _ = tree_segmented_scan(v, starts)
            np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_2d_lanes(self, rng):
        v = rng.standard_normal((64, 2))
        starts = rng.random(64) < 0.2
        starts[0] = True
        got, _ = tree_segmented_scan(v, starts)
        np.testing.assert_allclose(got, segmented_scan_inclusive(v, starts))

    def test_continuation_run(self):
        v = np.array([1.0, 1.0, 1.0, 1.0])
        starts = np.array([0, 0, 0, 0], dtype=bool)
        got, _ = tree_segmented_scan(v, starts)
        assert got.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_length_mismatch(self):
        with pytest.raises(ReproError):
            tree_segmented_scan(np.zeros(3), np.zeros(5, dtype=bool))


class TestStats:
    def test_log_steps(self):
        for n, steps in [(1, 0), (2, 1), (16, 4), (17, 5), (256, 8)]:
            _, st = tree_segmented_scan(np.ones(n), np.ones(n, dtype=bool))
            assert st.steps == steps, n

    def test_idle_fraction_grows(self):
        # Single segment: step d idles exactly d lanes -> nonzero idling.
        n = 128
        starts = np.zeros(n, dtype=bool)
        starts[0] = True
        _, st = tree_segmented_scan(np.ones(n), starts)
        assert 0.0 < st.idle_fraction < 1.0
        # ops = sum over steps of (n - d) for d = 1, 2, ..., 64
        assert st.element_ops == sum(n - (1 << k) for k in range(7))

    def test_all_starts_still_pays_slots(self):
        # Segment length 1 everywhere: zero useful adds, full slot bill --
        # exactly the waste the paper's early check avoids.
        n = 64
        _, st = tree_segmented_scan(np.ones(n), np.ones(n, dtype=bool))
        assert st.element_ops == 0
        assert st.element_slots == n * st.steps
        assert st.idle_fraction == 1.0

    def test_barriers(self):
        _, st = tree_segmented_scan(np.ones(32), np.ones(32, dtype=bool))
        assert st.barriers == st.steps - 1
