"""Unit tests for the footprint-budgeted prepared-matrix LRU cache."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro import ReproError, SpMVEngine
from repro.serve import PreparedCache, prepared_footprint_bytes


@pytest.fixture(scope="module")
def engine():
    return SpMVEngine()


@pytest.fixture(scope="module")
def prepared_pool(engine):
    """A few prepared matrices of different sizes (tuned once per module)."""
    out = {}
    for name, n, density, seed in [
        ("small", 40, 0.1, 1),
        ("medium", 120, 0.06, 2),
        ("large", 300, 0.04, 3),
    ]:
        A = sparse.random(n, n, density=density, random_state=seed, format="csr")
        out[name] = engine.prepare(A)
    return out


class TestFootprintAccounting:
    def test_charges_format_plus_csr_arrays(self, prepared_pool):
        p = prepared_pool["small"]
        expected = int(p.fmt.footprint_bytes()) + int(
            p.csr.data.nbytes + p.csr.indices.nbytes + p.csr.indptr.nbytes
        )
        assert prepared_footprint_bytes(p) == expected

    def test_larger_matrix_costs_more(self, prepared_pool):
        assert prepared_footprint_bytes(prepared_pool["large"]) > (
            prepared_footprint_bytes(prepared_pool["small"])
        )


class TestPreparedCache:
    def test_hit_miss_counters(self, prepared_pool):
        cache = PreparedCache()
        assert cache.get("a") is None
        cache.put("a", prepared_pool["small"])
        assert cache.get("a") is prepared_pool["small"]
        assert (cache.hits, cache.misses) == (1, 1)

    def test_peek_does_not_count_or_touch(self, prepared_pool):
        cache = PreparedCache()
        cache.put("a", prepared_pool["small"])
        cache.put("b", prepared_pool["medium"])
        assert cache.peek("a") is prepared_pool["small"]
        assert (cache.hits, cache.misses) == (0, 0)
        # Recency unchanged: "a" is still the LRU head.
        assert cache.keys()[0] == "a"

    def test_lru_eviction_under_budget(self, prepared_pool):
        small = prepared_footprint_bytes(prepared_pool["small"])
        medium = prepared_footprint_bytes(prepared_pool["medium"])
        cache = PreparedCache(budget_bytes=small + medium)
        cache.put("s", prepared_pool["small"])
        cache.put("m", prepared_pool["medium"])
        assert cache.evictions == 0
        evicted = cache.put("l", prepared_pool["large"])  # blows the budget
        assert [e.key for e in evicted] == ["s", "m"]
        assert cache.evictions == 2
        assert cache.keys() == ["l"]

    def test_get_refreshes_recency(self, prepared_pool):
        small = prepared_footprint_bytes(prepared_pool["small"])
        cache = PreparedCache(budget_bytes=2 * small)
        cache.put("a", prepared_pool["small"])
        cache.put("b", prepared_pool["small"])
        cache.get("a")  # now "b" is least recently used
        cache.put("c", prepared_pool["small"])
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_oversized_entry_still_admitted(self, prepared_pool):
        cache = PreparedCache(budget_bytes=1)
        evicted = cache.put("big", prepared_pool["large"])
        assert evicted == []
        assert cache.peek("big") is prepared_pool["large"]
        assert cache.total_bytes > cache.budget_bytes  # documented exception

    def test_oversized_insert_evicts_everything_else(self, prepared_pool):
        small = prepared_footprint_bytes(prepared_pool["small"])
        cache = PreparedCache(budget_bytes=2 * small)
        cache.put("a", prepared_pool["small"])
        evicted = cache.put("big", prepared_pool["large"])
        assert [e.key for e in evicted] == ["a"]
        assert cache.keys() == ["big"]

    def test_replace_updates_total_bytes(self, prepared_pool):
        cache = PreparedCache()
        cache.put("k", prepared_pool["large"])
        cache.put("k", prepared_pool["small"])
        assert len(cache) == 1
        assert cache.total_bytes == prepared_footprint_bytes(prepared_pool["small"])

    def test_total_bytes_is_sum_of_entries(self, prepared_pool):
        cache = PreparedCache()
        for i, p in enumerate(prepared_pool.values()):
            cache.put(str(i), p)
        assert cache.total_bytes == sum(
            prepared_footprint_bytes(p) for p in prepared_pool.values()
        )

    def test_clear_resets_residency_not_counters(self, prepared_pool):
        cache = PreparedCache()
        cache.put("a", prepared_pool["small"])
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.total_bytes == 0
        assert cache.hits == 1  # lifetime counters survive

    def test_stats_snapshot(self, prepared_pool):
        cache = PreparedCache(budget_bytes=10 << 20)
        cache.put("a", prepared_pool["small"])
        cache.get("a")
        cache.get("nope")
        snap = cache.stats()
        assert snap == {
            "entries": 1,
            "total_bytes": prepared_footprint_bytes(prepared_pool["small"]),
            "shared_bytes": 0,
            "budget_bytes": 10 << 20,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }

    def test_negative_budget_rejected(self):
        with pytest.raises(ReproError):
            PreparedCache(budget_bytes=-1)

    def test_zero_budget_keeps_one_entry(self, prepared_pool):
        cache = PreparedCache(budget_bytes=0)
        cache.put("a", prepared_pool["small"])
        cache.put("b", prepared_pool["medium"])
        assert cache.keys() == ["b"]  # newest survives, older evicted
        assert cache.evictions == 1


class TestCacheMatchesTable3Accounting:
    def test_bccoo_entry_consistent_with_footprint_module(self, engine):
        """The cache charges the same bytes Table 3's accounting computes."""
        A = sparse.random(200, 200, density=0.05, random_state=7, format="csr")
        p = engine.prepare(A)
        fmt_bytes = int(p.fmt.footprint_bytes())
        csr_bytes = int(
            p.csr.data.nbytes + p.csr.indices.nbytes + p.csr.indptr.nbytes
        )
        cache = PreparedCache()
        cache.put("k", p)
        assert cache.total_bytes == fmt_bytes + csr_bytes
        y = engine.multiply(p, np.ones(200)).y
        assert np.allclose(y, A @ np.ones(200))
