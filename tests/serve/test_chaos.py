"""Tests for the differential chaos drill (:mod:`repro.serve.chaos`).

The drill itself is the assertion machine; these tests pin that it (a)
passes in the configurations CI runs, with failover genuinely
exercised, (b) fails loudly when failover cannot have happened and a
pass would be vacuous, and (c) produces a JSON-able, replayable report.
"""

from __future__ import annotations

import json

import pytest

from repro.serve import ChaosReport, chaos_plan, run_chaos_drill

# Small, fast drill workload shared by most tests.
FAST = dict(cap_nnz=2_000, requests_per_matrix=2, value_refreshes=1,
            matrices=("QCD", "Circuit"))


class TestChaosPlan:
    def test_crash_budget_is_respected(self):
        plan = chaos_plan(seed=3, kills=1)
        assert plan.shard_crash(3) is True
        assert plan.shard_crash(3) is False  # budget of one spent
        assert [e.site for e in plan.events] == ["serve.shard_crash"]

    def test_crash_never_fires_on_last_live_shard(self):
        plan = chaos_plan(seed=3, kills=5)
        assert plan.shard_crash(1) is False
        assert plan.events == []

    def test_slow_returns_injected_delay(self):
        plan = chaos_plan(seed=3, kills=0, slows=1, slow_extra_s=0.4)
        assert plan.shard_slow(2) == pytest.approx(0.4)
        assert plan.shard_slow(2) is None


class TestChaosDrill:
    def test_kill_drill_passes_with_failover(self):
        report = run_chaos_drill(shards=3, seed=7, **FAST)
        assert report.passed
        assert report.matched == report.requests
        assert report.failovers > 0
        assert report.shard_crashes == 1
        assert report.live_shards == 2
        assert "serve.shard_crash" in report.fault_events

    def test_corrupt_shard_drill_passes(self):
        report = run_chaos_drill(
            shards=3, seed=11, kills=0, corrupt_shards=1, **FAST
        )
        assert report.passed
        assert report.matched == report.requests
        assert report.ejections >= 1
        assert report.failovers > 0

    def test_clean_drill_passes_without_failover_requirement(self):
        report = run_chaos_drill(shards=2, seed=1, kills=0, **FAST)
        assert report.require_failover is False
        assert report.passed
        assert report.failovers == 0

    def test_single_shard_never_requires_failover(self):
        # One shard: the crash site's n_live guard keeps it alive, and
        # require_failover defaults off so the drill isn't vacuously red.
        report = run_chaos_drill(shards=1, seed=1, kills=1, **FAST)
        assert report.require_failover is False
        assert report.passed

    def test_seed_replays_identically(self):
        a = run_chaos_drill(shards=3, seed=21, **FAST)
        b = run_chaos_drill(shards=3, seed=21, **FAST)
        assert a.passed and b.passed
        assert a.failovers == b.failovers
        assert a.fault_events == b.fault_events
        assert a.fabric_stats["shards"].keys() == b.fabric_stats["shards"].keys()

    def test_report_is_json_able(self):
        report = run_chaos_drill(shards=2, seed=2, kills=0, **FAST)
        blob = json.loads(json.dumps(report.to_dict()))
        assert blob["kind"] == "chaos_report"
        assert blob["passed"] is True
        assert blob["requests"] == report.requests
        assert "PASS" in report.summary()


class TestVacuousPassRejected:
    def test_required_failover_missing_fails(self):
        # Hand-built report: everything matched but no failover happened
        # although one was required -- must NOT pass.
        report = ChaosReport(
            seed=0, shards=3, requests=4, matched=4, mismatched=[],
            golden_errors=[], fabric_errors=[], failovers=0,
            shard_crashes=0, ejections=0, readmissions=0,
            quota_rejections=0, live_shards=3, fault_events=[],
            require_failover=True, elapsed_s=0.1,
        )
        assert not report.passed
        assert "FAIL" in report.summary()

    def test_mismatch_fails(self):
        report = ChaosReport(
            seed=0, shards=3, requests=4, matched=3, mismatched=[2],
            golden_errors=[], fabric_errors=[], failovers=5,
            shard_crashes=1, ejections=0, readmissions=0,
            quota_rejections=0, live_shards=2, fault_events=["serve.shard_crash"],
            require_failover=True, elapsed_s=0.1,
        )
        assert not report.passed

    def test_lost_request_fails(self):
        report = ChaosReport(
            seed=0, shards=3, requests=4, matched=3, mismatched=[],
            golden_errors=[], fabric_errors=[(1, "ShardCrashError")],
            failovers=5, shard_crashes=1, ejections=0, readmissions=0,
            quota_rejections=0, live_shards=2, fault_events=["serve.shard_crash"],
            require_failover=True, elapsed_s=0.1,
        )
        assert not report.passed
