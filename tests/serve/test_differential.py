"""Differential harness: batched serving == sequential multiply, bitwise.

The serving layer's core claim is that coalescing requests into one SpMM
dispatch changes *nothing* about the answers: for every format
(BCCOO/BCCOO+), every scan strategy, and every injected-fault scenario,
the column a request receives from a batch is **bit-identical**
(``np.array_equal``, not ``allclose``) to what a sequential
``engine.multiply`` of its vector returns.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro import Observer, ServeConfig, SpMVEngine, SpMVServer
from repro.fault import FaultPlan
from repro.tuning import TuningPoint

N = 160


def make_matrix(seed: int, n: int = N, density: float = 0.05):
    return sparse.random(n, n, density=density, random_state=seed, format="csr")


def batch_vs_sequential(engine: SpMVEngine, prepared, xs) -> None:
    """Serve ``xs`` as one coalesced batch; pin every column bitwise."""
    srv = SpMVServer(
        engine, ServeConfig(max_batch=len(xs), batch_window_s=0.0), start=False
    )
    futs = [srv.submit(prepared, x) for x in xs]
    srv.drain()
    for x, fut in zip(xs, futs):
        r = fut.result()
        expected = engine.multiply(prepared, x).y
        assert np.array_equal(r.y, expected), (
            "batched column differs bitwise from sequential multiply"
        )
    srv.close()


#: The format/strategy grid: both formats, both compute strategies,
#: both scan modes, both cross-workgroup schemes.
POINTS = {
    "bccoo-s1-matrix": TuningPoint(block_height=2, block_width=2).with_kernel(
        strategy=1, scan_mode="matrix"
    ),
    "bccoo-s1-tree": TuningPoint(block_height=2, block_width=2).with_kernel(
        strategy=1, scan_mode="tree"
    ),
    "bccoo-s2-matrix": TuningPoint(block_height=1, block_width=1).with_kernel(
        strategy=2, scan_mode="matrix"
    ),
    "bccoo-s2-tree": TuningPoint(block_height=1, block_width=1).with_kernel(
        strategy=2, scan_mode="tree"
    ),
    "bccoo-second-kernel": TuningPoint(block_height=1, block_width=2).with_kernel(
        strategy=2, cross_wg="second_kernel"
    ),
    "bccoo+-s1-matrix": TuningPoint(
        block_height=2, block_width=2, slice_count=4
    ).with_kernel(strategy=1, scan_mode="matrix"),
    "bccoo+-s2-tree": TuningPoint(
        block_height=1, block_width=1, slice_count=2
    ).with_kernel(strategy=2, scan_mode="tree"),
}


class TestFormatStrategyGrid:
    @pytest.mark.parametrize("label", sorted(POINTS))
    def test_bit_identical_across_grid(self, label):
        point = POINTS[label]
        engine = SpMVEngine()
        A = make_matrix(11)
        prepared = engine.prepare(A, point=point)
        assert prepared.point.format_name == (
            "bccoo+" if point.slice_count > 1 else "bccoo"
        )
        rng = np.random.default_rng(42)
        xs = [rng.standard_normal(N) for _ in range(6)]
        batch_vs_sequential(engine, prepared, xs)

    @pytest.mark.parametrize("label", ["bccoo-s2-matrix", "bccoo+-s1-matrix"])
    def test_adversarial_value_ranges(self, label):
        """Mixed magnitudes: where FP reassociation would show up first."""
        point = POINTS[label]
        engine = SpMVEngine()
        A = make_matrix(13)
        prepared = engine.prepare(A, point=point)
        rng = np.random.default_rng(7)
        xs = [
            rng.standard_normal(N) * 1e12,
            rng.standard_normal(N) * 1e-12,
            np.where(rng.random(N) > 0.5, 1e9, -1e-9),
            np.zeros(N),
        ]
        batch_vs_sequential(engine, prepared, xs)


class TestUnderInjectedFaults:
    def test_stale_grp_sum_permissive(self):
        """Adjacent-sync staleness: the engine's containment recovers it
        identically for the batch and for each sequential multiply."""
        engine = SpMVEngine(
            policy="permissive",
            fault_plan=FaultPlan.single("sync.stale_grp_sum", seed=7, count=None),
        )
        A = make_matrix(17)
        prepared = engine.prepare(A)
        rng = np.random.default_rng(3)
        xs = [rng.standard_normal(N) for _ in range(5)]
        batch_vs_sequential(engine, prepared, xs)

    def test_nan_partial_permissive_serves_correct_answers(self):
        # NaN injection poisons values, not control flow; sampled
        # validation can let different corruptions through for the batch
        # and the sequential run, so the guarantee here is correctness
        # (exhaustive validation + containment), not bit-identity.
        engine = SpMVEngine(
            policy="permissive",
            validation_samples=None,  # validate every row
            fault_plan=FaultPlan.single("kernel.nan_partial", seed=2, count=None),
        )
        A = make_matrix(19)
        prepared = engine.prepare(A)
        srv = SpMVServer(engine, ServeConfig(batch_window_s=0.0), start=False)
        rng = np.random.default_rng(4)
        xs = [rng.standard_normal(N) for _ in range(4)]
        futs = [srv.submit(prepared, x) for x in xs]
        srv.drain()
        for x, fut in zip(xs, futs):
            y = fut.result().y
            assert not np.isnan(y).any()
            assert np.allclose(y, A @ x, rtol=1e-9, atol=1e-12)
        srv.close()

    def test_worker_crash_during_tuning(self):
        """A tuner worker crash mid-prepare (parallel search) still
        yields a servable prepared matrix with bit-identical batching."""
        engine = SpMVEngine(
            policy="permissive",
            tuning_workers=2,
            tuning_executor="thread",
            fault_plan=FaultPlan.single("tuner.worker_crash", seed=5, count=1),
        )
        A = make_matrix(23)
        prepared = engine.prepare(A)  # crash absorbed by the tuner
        rng = np.random.default_rng(5)
        xs = [rng.standard_normal(N) for _ in range(4)]
        batch_vs_sequential(engine, prepared, xs)

    def test_fault_plus_explicit_point(self):
        """Faults and a pinned BCCOO+ configuration compose."""
        engine = SpMVEngine(
            policy="permissive",
            fault_plan=FaultPlan.single("sync.stale_grp_sum", seed=11, count=None),
        )
        A = make_matrix(29)
        prepared = engine.prepare(A, point=POINTS["bccoo+-s2-tree"])
        rng = np.random.default_rng(6)
        xs = [rng.standard_normal(N) for _ in range(3)]
        batch_vs_sequential(engine, prepared, xs)


class TestServedEqualsGroundTruth:
    def test_against_scipy(self):
        """End to end (tuned, observed, batched) vs ``A @ x``."""
        obs = Observer()
        engine = SpMVEngine(observer=obs)
        A = make_matrix(31)
        srv = SpMVServer(engine, ServeConfig(batch_window_s=0.0), observer=obs, start=False)
        rng = np.random.default_rng(8)
        xs = [rng.standard_normal(N) for _ in range(8)]
        futs = [srv.submit(A, x) for x in xs]
        srv.drain()
        for x, fut in zip(xs, futs):
            assert np.allclose(fut.result().y, A @ x, rtol=1e-10, atol=1e-12)
        srv.close()
