"""Tests for the sharded serving fabric (:mod:`repro.serve.fabric`).

Deterministic (threadless) mode throughout unless a test is explicitly
about the pump thread: fabrics are built with ``start=False`` and
driven by :meth:`drain`, so routing, failover and scheduling depend
only on the submission order.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro import SpMVEngine
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    QuotaExceededError,
    ServerClosedError,
    ShardCrashError,
    ValidationError,
)
from repro.fault import BREAKER_CLOSED, BREAKER_OPEN, RetryPolicy
from repro.serve import (
    FabricConfig,
    HealthPolicy,
    ServeConfig,
    ServeFabric,
    ShardRouter,
    TenantPolicy,
    serve_key,
)
from repro.util import as_csr


def make_matrix(seed: int, n: int = 120, density: float = 0.05):
    return sparse.random(n, n, density=density, random_state=seed, format="csr")


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class FlakyEngine(SpMVEngine):
    """Engine whose dispatches fail until ``ok`` is flipped to True."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.ok = False

    def multiply(self, *args, **kwargs):
        if not self.ok:
            raise ValidationError("flaky shard: dispatch failed")
        return super().multiply(*args, **kwargs)

    def multiply_many(self, *args, **kwargs):
        if not self.ok:
            raise ValidationError("flaky shard: dispatch failed")
        return super().multiply_many(*args, **kwargs)


def make_fabric(shards=2, **kwargs):
    kwargs.setdefault("serve_config", ServeConfig(batch_window_s=0.0))
    kwargs.setdefault("start", False)
    return ServeFabric(shards, **kwargs)


def matrix_owned_by(fabric, shard_name, n=120):
    """A matrix whose serve key the router assigns to ``shard_name``."""
    engine = fabric.shards[0].engine
    for seed in range(200):
        A = make_matrix(seed, n=n)
        if fabric.router.owner(serve_key(engine, as_csr(A))) == shard_name:
            return A
    raise AssertionError(f"no seed < 200 routed to {shard_name}")


class TestShardRouter:
    def test_deterministic_and_stable(self):
        a = ShardRouter(["shard-0", "shard-1", "shard-2"])
        b = ShardRouter(["shard-0", "shard-1", "shard-2"])
        for key in ("alpha", "beta", "gamma"):
            assert a.preference(key) == b.preference(key)

    def test_preference_is_full_permutation(self):
        names = [f"shard-{i}" for i in range(4)]
        router = ShardRouter(names)
        for key in ("k1", "k2", "k3", "k4", "k5"):
            pref = router.preference(key)
            assert sorted(pref) == sorted(names)
            assert pref[0] == router.owner(key)

    def test_keys_spread_over_shards(self):
        router = ShardRouter([f"shard-{i}" for i in range(3)], vnodes=64)
        share = router.share([f"key-{i}" for i in range(300)])
        # Consistent hashing with vnodes: no shard starved, none hogging.
        assert all(count > 0 for count in share.values())
        assert max(share.values()) < 300

    def test_single_shard_owns_everything(self):
        router = ShardRouter(["only"])
        assert router.preference("whatever") == ["only"]

    def test_validation(self):
        with pytest.raises(ValidationError):
            ShardRouter([])
        with pytest.raises(ValidationError):
            ShardRouter(["a", "a"])
        with pytest.raises(ValidationError):
            ShardRouter(["a"], vnodes=0)


class TestFabricConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"vnodes": 0},
            {"failure_threshold": 0},
            {"breaker_cooldown_s": -1.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            FabricConfig(**kwargs)

    def test_tenant_policy_validation(self):
        with pytest.raises(ValidationError):
            TenantPolicy(weight=0.0)
        with pytest.raises(ValidationError):
            TenantPolicy(max_pending=0)


class TestFabricServing:
    def test_responses_bit_identical_to_engine(self):
        fabric = make_fabric(3)
        engine = SpMVEngine()
        rng = np.random.default_rng(0)
        try:
            work = []
            for seed in range(4):
                A = make_matrix(seed)
                for _ in range(3):
                    x = rng.standard_normal(120)
                    work.append((A, x, fabric.submit(A, x)))
            fabric.drain()
            for A, x, fut in work:
                resp = fut.result(timeout=0)
                ref = engine.multiply(engine.prepare(A), x).y
                np.testing.assert_array_equal(resp.y, ref)
                assert resp.shard in {s.name for s in fabric.shards}
                assert resp.failovers == 0
        finally:
            fabric.close()

    def test_same_key_routes_to_one_shard(self):
        fabric = make_fabric(3)
        try:
            A = make_matrix(5)
            rng = np.random.default_rng(1)
            futs = [
                fabric.submit(A, rng.standard_normal(120)) for _ in range(6)
            ]
            fabric.drain()
            shards = {f.result(timeout=0).shard for f in futs}
            assert len(shards) == 1
        finally:
            fabric.close()

    def test_expired_deadline_fails_typed(self):
        fabric = make_fabric(2)
        try:
            fut = fabric.submit(make_matrix(2), np.ones(120), timeout_s=0.0)
            fabric.drain()
            with pytest.raises(DeadlineExceeded):
                fut.result(timeout=0)
        finally:
            fabric.close()

    def test_threaded_mode_serves(self):
        fabric = ServeFabric(
            2, serve_config=ServeConfig(batch_window_s=0.0), start=True
        )
        try:
            A = make_matrix(3)
            rng = np.random.default_rng(2)
            xs = [rng.standard_normal(120) for _ in range(8)]
            futs = [fabric.submit(A, x) for x in xs]
            for x, fut in zip(xs, futs):
                resp = fut.result(timeout=60.0)
                np.testing.assert_array_equal(resp.y, resp.y)  # completed
        finally:
            fabric.close()
        assert fabric.n_responses == 8


class TestQuotas:
    def test_quota_rejects_over_limit(self):
        fabric = make_fabric(
            2, tenants={"t": TenantPolicy(max_pending=2)}
        )
        try:
            A = make_matrix(1)
            fabric.submit(A, np.ones(120), tenant="t")
            fabric.submit(A, np.ones(120), tenant="t")
            with pytest.raises(QuotaExceededError) as exc_info:
                fabric.submit(A, np.ones(120), tenant="t")
            assert exc_info.value.tenant == "t"
            assert exc_info.value.limit == 2
            assert fabric.n_quota_rejections == 1
            # Other tenants are unaffected by t's quota.
            fabric.submit(A, np.ones(120), tenant="other")
        finally:
            fabric.close()

    def test_quota_frees_after_completion(self):
        fabric = make_fabric(2, tenants={"t": TenantPolicy(max_pending=1)})
        try:
            A = make_matrix(1)
            fut = fabric.submit(A, np.ones(120), tenant="t")
            fabric.drain()
            fut.result(timeout=0)
            # The slot is free again once the request completed.
            fabric.submit(A, np.ones(120), tenant="t")
            fabric.drain()
        finally:
            fabric.close()

    def test_weighted_fair_dequeue_order(self):
        fabric = make_fabric(
            2,
            tenants={
                "a": TenantPolicy(weight=2.0),
                "b": TenantPolicy(weight=1.0),
            },
        )
        try:
            A = make_matrix(1)
            for _ in range(3):
                fabric.submit(A, np.ones(120), tenant="a")
                fabric.submit(A, np.ones(120), tenant="b")
            # Stride scheduling: weight-2 "a" is picked twice as often;
            # ties break lexicographically, so the order is exact.
            order = []
            with fabric._cond:
                for _ in range(6):
                    order.append(fabric._next_tenant_locked())
            assert order == ["a", "b", "a", "a", "b", "a"]
        finally:
            fabric.close(drain=False)

    def test_idle_tenant_earns_no_burst(self):
        fabric = make_fabric(2)
        try:
            A = make_matrix(1)
            # "busy" accumulates virtual time; "late" arrives afterwards
            # and must start at the current virtual time, not at zero.
            for _ in range(4):
                fabric.submit(A, np.ones(120), tenant="busy")
            fabric.drain()
            fabric.submit(A, np.ones(120), tenant="late")
            with fabric._cond:
                assert fabric._passes["late"] >= fabric._vtime
        finally:
            fabric.close()


class TestFailover:
    def test_kill_shard_mid_flight_fails_over(self):
        fabric = make_fabric(2, retry_policy=RetryPolicy(max_attempts=3))
        try:
            victim = "shard-0"
            A = matrix_owned_by(fabric, victim)
            rng = np.random.default_rng(3)
            xs = [rng.standard_normal(120) for _ in range(4)]
            futs = [fabric.submit(A, x) for x in xs]
            # Forward to the shard queues, then crash the owner with the
            # requests genuinely in flight.
            fabric._schedule()
            assert fabric.kill_shard(victim) == 4
            fabric.drain()
            engine = SpMVEngine()
            ref_prepared = engine.prepare(A)
            for x, fut in zip(xs, futs):
                resp = fut.result(timeout=0)
                assert resp.shard == "shard-1"
                assert resp.failovers == 1
                np.testing.assert_array_equal(
                    resp.y, engine.multiply(ref_prepared, x).y
                )
            assert fabric.n_failovers == 4
            assert fabric.n_shard_crashes == 1
            assert fabric.live_shards() == ["shard-1"]
        finally:
            fabric.close()

    def test_kill_is_idempotent(self):
        fabric = make_fabric(2)
        try:
            assert fabric.kill_shard("shard-0") == 0
            assert fabric.kill_shard("shard-0") == 0
            assert fabric.n_shard_crashes == 1
        finally:
            fabric.close()

    def test_no_live_shards_fails_typed(self):
        fabric = make_fabric(2)
        try:
            fabric.kill_shard("shard-0")
            fabric.kill_shard("shard-1")
            fut = fabric.submit(make_matrix(1), np.ones(120))
            fabric.drain()
            with pytest.raises((CircuitOpenError, ShardCrashError,
                                ServerClosedError)):
                fut.result(timeout=0)
        finally:
            fabric.close(drain=False)

    def test_dead_shard_not_routed_after_crash(self):
        fabric = make_fabric(2)
        try:
            fabric.kill_shard("shard-0")
            A = matrix_owned_by(fabric, "shard-0")
            fut = fabric.submit(A, np.ones(120))
            fabric.drain()
            resp = fut.result(timeout=0)
            # The dead owner is skipped; the ring successor serves, and
            # since the request was never forwarded to the dead shard
            # this is routing, not failover.
            assert resp.shard == "shard-1"
            assert resp.failovers == 0
        finally:
            fabric.close()


class TestEjectionReadmission:
    def _flaky_fabric(self, clock):
        flaky = {}

        def factory(index):
            if index == 1:
                engine = FlakyEngine()
                flaky["engine"] = engine
                return engine
            return SpMVEngine()

        fabric = make_fabric(
            2,
            engine_factory=factory,
            config=FabricConfig(shards=2, breaker_cooldown_s=10.0),
            health_policy=HealthPolicy(
                window=8, min_samples=2, max_error_rate=0.5
            ),
            retry_policy=RetryPolicy(max_attempts=3),
            clock=clock,
        )
        return fabric, flaky

    def test_sick_shard_ejected_then_readmitted(self):
        clock = FakeClock()
        fabric, flaky = self._flaky_fabric(clock)
        try:
            A = matrix_owned_by(fabric, "shard-1")
            rng = np.random.default_rng(4)
            futs = [
                fabric.submit(A, rng.standard_normal(120)) for _ in range(4)
            ]
            fabric.drain()
            for fut in futs:
                fut.result(timeout=0)  # failed over to shard-0
            assert fabric.n_ejections >= 1
            assert fabric.breaker.state("shard-1") == BREAKER_OPEN
            assert fabric.live_shards() == ["shard-0"]

            # While ejected, the sick shard's key range routes elsewhere
            # without burning failovers.
            failovers_before = fabric.n_failovers
            fut = fabric.submit(A, rng.standard_normal(120))
            fabric.drain()
            assert fut.result(timeout=0).shard == "shard-0"
            assert fabric.n_failovers == failovers_before

            # Shard recovers; after the cooldown the next owner-keyed
            # request is the half-open probe and readmits it.
            flaky["engine"].ok = True
            clock.advance(11.0)
            fut = fabric.submit(A, rng.standard_normal(120))
            fabric.drain()
            assert fut.result(timeout=0).shard == "shard-1"
            assert fabric.n_readmissions == 1
            assert fabric.breaker.state("shard-1") == BREAKER_CLOSED
            assert sorted(fabric.live_shards()) == ["shard-0", "shard-1"]
            # Readmission reset the health window: old failures gone.
            assert fabric.shards[1].health.samples() == 1
        finally:
            fabric.close()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        fabric, flaky = self._flaky_fabric(clock)
        try:
            A = matrix_owned_by(fabric, "shard-1")
            rng = np.random.default_rng(5)
            futs = [
                fabric.submit(A, rng.standard_normal(120)) for _ in range(3)
            ]
            fabric.drain()
            assert fabric.breaker.state("shard-1") == BREAKER_OPEN
            # Still sick after the cooldown: the probe fails, the
            # circuit re-opens, and the request still succeeds elsewhere.
            clock.advance(11.0)
            fut = fabric.submit(A, rng.standard_normal(120))
            fabric.drain()
            assert fut.result(timeout=0).shard == "shard-0"
            assert fabric.breaker.state("shard-1") == BREAKER_OPEN
            assert fabric.n_readmissions == 0
        finally:
            fabric.close()


class TestLifecycle:
    def test_close_fails_queued_futures(self):
        fabric = make_fabric(2)
        A = make_matrix(1)
        futs = [fabric.submit(A, np.ones(120)) for _ in range(3)]
        fabric.close(drain=False)
        for fut in futs:
            with pytest.raises(ServerClosedError):
                fut.result(timeout=0)
        with pytest.raises(ServerClosedError):
            fabric.submit(A, np.ones(120))

    def test_close_drain_completes_queued(self):
        fabric = make_fabric(2)
        A = make_matrix(1)
        futs = [fabric.submit(A, np.ones(120)) for _ in range(3)]
        fabric.close()  # drain=True
        for fut in futs:
            assert fut.result(timeout=0).y is not None

    def test_context_manager(self):
        with make_fabric(2) as fabric:
            fut = fabric.submit(make_matrix(1), np.ones(120))
            fabric.drain()
            fut.result(timeout=0)

    def test_stats_shape(self):
        fabric = make_fabric(2)
        try:
            A = make_matrix(1)
            fabric.submit(A, np.ones(120), tenant="t")
            fabric.drain()
            snap = fabric.stats()
            for key in (
                "requests", "responses", "failovers", "quota_rejections",
                "ejections", "readmissions", "shard_crashes", "live_shards",
                "shards", "tenants", "cache", "batches", "shed",
            ):
                assert key in snap
            assert snap["live_shards"] == 2
            assert set(snap["shards"]) == {"shard-0", "shard-1"}
            for shard_snap in snap["shards"].values():
                assert shard_snap["breaker"] == BREAKER_CLOSED
                assert "health" in shard_snap and "server" in shard_snap
            assert snap["tenants"]["t"]["pending"] == 0
        finally:
            fabric.close()

    def test_live_shards_gauge(self):
        from repro.obs import Observer

        obs = Observer()
        fabric = make_fabric(2, observer=obs)
        try:
            gauge = obs.metrics.get("fabric.live_shards")
            assert gauge is not None and gauge.value() == 2
            fabric.kill_shard("shard-0")
            assert gauge.value() == 1
        finally:
            fabric.close()
