"""Tests for the per-shard health tracker (:mod:`repro.serve.health`)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ReproError
from repro.serve import HealthPolicy, ShardHealth


class TestHealthPolicy:
    def test_defaults_valid(self):
        p = HealthPolicy()
        assert p.window >= p.min_samples

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"min_samples": 0},
            {"window": 4, "min_samples": 5},
            {"max_error_rate": 0.0},
            {"max_error_rate": 1.5},
            {"max_latency_s": 0.0},
            {"max_latency_s": -1.0},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ReproError):
            HealthPolicy(**kwargs)


class TestShardHealth:
    def test_healthy_by_default_under_min_samples(self):
        h = ShardHealth(HealthPolicy(window=8, min_samples=4))
        # Even straight failures don't judge before min_samples.
        h.record_failure()
        h.record_failure()
        h.record_failure()
        assert h.healthy()
        h.record_failure()
        assert not h.healthy()

    def test_error_rate_threshold(self):
        h = ShardHealth(HealthPolicy(window=8, min_samples=4, max_error_rate=0.5))
        for _ in range(4):
            h.record_success()
        assert h.healthy()
        # 4 ok + 4 err in the window -> rate exactly 0.5 -> sick (>=).
        for _ in range(4):
            h.record_failure()
        assert h.error_rate() == pytest.approx(0.5)
        assert not h.healthy()

    def test_window_forgets_old_outcomes(self):
        h = ShardHealth(HealthPolicy(window=4, min_samples=2, max_error_rate=0.5))
        for _ in range(4):
            h.record_failure()
        assert not h.healthy()
        # Four fresh successes push every failure out of the window.
        for _ in range(4):
            h.record_success()
        assert h.error_rate() == 0.0
        assert h.healthy()

    def test_latency_criterion(self):
        h = ShardHealth(
            HealthPolicy(window=8, min_samples=2, max_latency_s=0.1)
        )
        h.record_success(0.01)
        h.record_success(0.01)
        assert h.healthy()
        h.record_success(1.0)  # mean now (0.01+0.01+1.0)/3 > 0.1
        assert h.mean_latency_s() > 0.1
        assert not h.healthy()

    def test_latency_criterion_disabled_by_default(self):
        h = ShardHealth(HealthPolicy(window=4, min_samples=2))
        h.record_success(100.0)
        h.record_success(100.0)
        assert h.healthy()

    def test_reset_clears_window_keeps_lifetime(self):
        h = ShardHealth(HealthPolicy(window=4, min_samples=2))
        h.record_failure()
        h.record_failure()
        assert not h.healthy()
        h.reset()
        assert h.healthy()
        assert h.samples() == 0
        assert h.n_err == 2  # lifetime counters survive the reset

    def test_stats_snapshot(self):
        h = ShardHealth(HealthPolicy(window=4, min_samples=2))
        h.record_success(0.5)
        h.record_failure(1.5)
        snap = h.stats()
        assert snap["ok"] == 1 and snap["errors"] == 1
        assert snap["samples"] == 2
        assert snap["error_rate"] == pytest.approx(0.5)
        assert snap["mean_latency_s"] == pytest.approx(1.0)
        assert snap["healthy"] is False

    def test_thread_safety_counts(self):
        h = ShardHealth(HealthPolicy(window=16, min_samples=4))
        n, threads = 200, []

        def hammer():
            for _ in range(n):
                h.record_success(0.001)

        for _ in range(4):
            threads.append(threading.Thread(target=hammer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.n_ok == 4 * n
        assert h.samples() == 16  # window stays bounded
