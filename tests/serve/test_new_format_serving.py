"""The new formats through the serve layer: shm, processes, solves.

Merge-path CSR and RG-CSR prepared matrices must survive every
transport the serve layer uses -- the in-process request path, the
shared-memory arena, pickling into forked workers, and a SIGKILL'd
worker being respawned and re-warmed from the arena -- without changing
a single output bit.  Every test compares against the direct
``engine.multiply`` (or the direct in-process solve) with
``np.array_equal``.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro import ServeFabric, SpMVEngine, SpMVServer
from repro.fault import FaultPlan
from repro.fault.injection import fault_scope
from repro.formats import MergeCSRMatrix, RGCSRMatrix
from repro.serve import WorkerConfig
from repro.solvers import SolverSession
from repro.tuning import TuningPoint

FORMAT_POINTS = {
    "merge_csr": (TuningPoint(base_format="merge_csr"), MergeCSRMatrix),
    "rgcsr": (TuningPoint(base_format="rgcsr"), RGCSRMatrix),
}


def spd_system(n=150):
    A = sparse.diags([-1.0, 4.0, -1.0], [-1, 0, 1], shape=(n, n)).tocsr()
    return A, np.ones(n)


def assert_solves_identical(direct, served):
    assert np.array_equal(direct.x, served.x)
    assert direct.history == served.history
    assert len(direct.iterates) == len(served.iterates)
    for d, s in zip(direct.iterates, served.iterates):
        assert np.array_equal(d, s)


class TestServedRequests:
    """In-process server path: served column == direct multiply."""

    @pytest.mark.parametrize("label", sorted(FORMAT_POINTS))
    def test_server_matches_direct(self, label, rng):
        point, fmt_cls = FORMAT_POINTS[label]
        A = sparse.random(160, 160, density=0.05, random_state=5,
                          format="csr")
        engine = SpMVEngine()
        prepared = engine.prepare(A, point=point)
        assert isinstance(prepared.fmt, fmt_cls)
        xs = [rng.standard_normal(160) for _ in range(5)]
        server = SpMVServer(engine, start=False)
        try:
            futs = [server.submit(prepared, x) for x in xs]
            server.drain()
            for x, fut in zip(xs, futs):
                expected = engine.multiply(prepared, x).y
                assert np.array_equal(fut.result().y, expected)
        finally:
            server.close()


class TestProcessWorkers:
    """Forked workers: the prepared matrix crosses as an arena handle."""

    def test_merge_csr_survives_worker_kill(self, rng):
        point, fmt_cls = FORMAT_POINTS["merge_csr"]
        A = sparse.random(200, 200, density=0.06, random_state=9,
                          format="csr")
        engine = SpMVEngine()
        prepared = engine.prepare(A, point=point)
        assert isinstance(prepared.fmt, fmt_cls)
        xs = [rng.standard_normal(200) for _ in range(8)]
        expected = [engine.multiply(prepared, x).y for x in xs]

        plan = FaultPlan.parse("serve.worker_kill:p=0.6,count=2,seed=7")
        fabric = ServeFabric(
            3, start=False, processes=True,
            worker_config=WorkerConfig(reply_timeout_s=30.0),
        )
        try:
            with fault_scope(plan):
                got = [fabric.multiply(prepared, x).y for x in xs]
            # Let the supervisor finish healing the killed workers.
            fabric.tick(rounds=4)
            stats = fabric.stats()
        finally:
            fabric.close()
        assert stats["worker_kills"] >= 1, "seeded kill never fired"
        for e, g in zip(expected, got):
            assert np.array_equal(e, g)

    def test_rgcsr_through_processes_clean(self, rng):
        point, fmt_cls = FORMAT_POINTS["rgcsr"]
        A = sparse.random(200, 200, density=0.06, random_state=10,
                          format="csr")
        engine = SpMVEngine()
        prepared = engine.prepare(A, point=point)
        assert isinstance(prepared.fmt, fmt_cls)
        xs = [rng.standard_normal(200) for _ in range(4)]
        expected = [engine.multiply(prepared, x).y for x in xs]
        fabric = ServeFabric(
            2, start=False, processes=True,
            worker_config=WorkerConfig(reply_timeout_s=30.0),
        )
        try:
            got = [fabric.multiply(prepared, x).y for x in xs]
        finally:
            fabric.close()
        for e, g in zip(expected, got):
            assert np.array_equal(e, g)


class TestSolverSessions:
    def test_cg_over_merge_csr_under_worker_kill(self):
        A, b = spd_system()
        point, fmt_cls = FORMAT_POINTS["merge_csr"]
        engine = SpMVEngine()
        prepared = engine.prepare(A, point=point)
        assert isinstance(prepared.fmt, fmt_cls)

        direct = SolverSession(prepared, engine=engine).solve(
            b, method="cg", keep_iterates=True
        )
        plan = FaultPlan.parse("serve.worker_kill:p=0.6,count=2,seed=7")
        fabric = ServeFabric(
            3, start=False, processes=True,
            worker_config=WorkerConfig(reply_timeout_s=30.0),
        )
        try:
            sess = SolverSession(prepared, engine=engine, server=fabric)
            with fault_scope(plan):
                served = sess.solve(b, method="cg", keep_iterates=True)
            fabric.tick(rounds=4)
            stats = fabric.stats()
        finally:
            fabric.close()
        assert stats["worker_kills"] >= 1, "seeded kill never fired"
        assert direct.converged and served.converged
        assert_solves_identical(direct, served)

    def test_cg_over_rgcsr_served_in_process(self):
        A, b = spd_system()
        point, fmt_cls = FORMAT_POINTS["rgcsr"]
        engine = SpMVEngine()
        prepared = engine.prepare(A, point=point)
        assert isinstance(prepared.fmt, fmt_cls)
        direct = SolverSession(prepared, engine=engine).solve(
            b, method="cg", keep_iterates=True
        )
        server = SpMVServer(engine, start=False)
        try:
            served = SolverSession(
                prepared, engine=engine, server=server
            ).solve(b, method="cg", keep_iterates=True)
        finally:
            server.close()
        assert direct.converged and served.converged
        assert_solves_identical(direct, served)

    def test_value_refresh_preserves_merge_structure(self):
        A, b = spd_system()
        point, _ = FORMAT_POINTS["merge_csr"]
        engine = SpMVEngine()
        sess = SolverSession(engine.prepare(A, point=point), engine=engine)
        first = sess.prepared
        sess.solve(b, method="cg")
        A2 = (A * 2.0).tocsr()
        sess.update_values(A2)
        # Structure is shared by identity across the refresh.
        assert sess.prepared.fmt.row_ptr is first.fmt.row_ptr
        assert sess.prepared.fmt.col_index is first.fmt.col_index
        refreshed = sess.solve(b, method="cg", keep_iterates=True)
        fresh = SolverSession(
            engine.prepare(A2, point=point), engine=engine
        ).solve(b, method="cg", keep_iterates=True)
        assert_solves_identical(fresh, refreshed)
