"""Every repro error must survive a pickle round-trip intact.

The out-of-process shard workers (:mod:`repro.serve.workers`) forward
child-side exceptions to the parent over a multiprocessing pipe, so an
unpicklable error class silently turns a *typed* failure into a broken
pipe.  This sweep constructs every exception class in
:mod:`repro.errors` -- with all its keyword attributes populated -- and
asserts the clone that comes back from ``pickle`` is the same type,
message and payload.  Adding a new error class with a pickle-hostile
``__init__`` (required positional args not forwarded to ``super()`` is
the classic trap) fails here, not in a chaos drill.
"""

from __future__ import annotations

import inspect
import pickle

import pytest

import repro.errors as errors_mod
from repro.errors import RemoteWorkerError, ReproError
from repro.serve.workers import _picklable_error

ERROR_CLASSES = sorted(
    (
        obj
        for obj in vars(errors_mod).values()
        if isinstance(obj, type)
        and issubclass(obj, ReproError)
        and obj.__module__ == "repro.errors"
    ),
    key=lambda cls: cls.__name__,
)


def _dummy_value(name: str):
    """Plausible payload for a keyword attribute, picked by name."""
    if name.endswith("_s") or name in ("fraction",):
        return 0.25
    if name in ("queue_depth", "limit", "pending", "attempts", "workgroup",
                "lane", "count"):
        return 3
    return f"dummy-{name}"


def _construct(cls):
    """Build an instance with every keyword attribute populated."""
    sig = inspect.signature(cls.__init__)
    params = list(sig.parameters.values())[1:]  # drop self
    kwargs = {}
    for param in params[1:]:  # drop the message positional
        if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
            continue
        kwargs[param.name] = _dummy_value(param.name)
    try:
        return cls("boom", **kwargs)
    except Exception:
        # A class validating its payload still must round-trip with
        # whatever it accepts.
        return cls("boom")


def test_sweep_is_not_vacuous():
    names = {cls.__name__ for cls in ERROR_CLASSES}
    assert {"ReproError", "ShardCrashError", "RemoteWorkerError",
            "ServerOverloadedError", "QuotaExceededError"} <= names
    assert len(ERROR_CLASSES) >= 15


@pytest.mark.parametrize("cls", ERROR_CLASSES, ids=lambda c: c.__name__)
def test_round_trips_through_pickle(cls):
    exc = _construct(cls)
    clone = pickle.loads(pickle.dumps(exc))
    assert type(clone) is cls
    assert str(clone) == str(exc)
    assert clone.__dict__ == exc.__dict__
    assert isinstance(clone, ReproError)


@pytest.mark.parametrize("cls", ERROR_CLASSES, ids=lambda c: c.__name__)
def test_workers_pass_it_through_unwrapped(cls):
    exc = _construct(cls)
    shipped = _picklable_error(exc)
    assert shipped is exc, (
        f"{cls.__name__} should cross the worker pipe as itself, "
        f"got {type(shipped).__name__}"
    )


class TestUnpicklableFallback:
    def test_wrapped_as_remote_worker_error(self):
        class Hostile(ReproError):
            def __init__(self, message, payload):
                super().__init__(message)
                self.payload = payload

        exc = Hostile("cannot cross", payload=lambda: None)
        shipped = _picklable_error(exc)
        assert isinstance(shipped, RemoteWorkerError)
        assert shipped.original_type == "Hostile"
        assert "cannot cross" in str(shipped)
        assert shipped.remote_traceback is not None
        # The wrapper itself must round-trip.
        clone = pickle.loads(pickle.dumps(shipped))
        assert isinstance(clone, RemoteWorkerError)
        assert clone.original_type == "Hostile"

    def test_bad_reconstructor_is_also_caught(self):
        # Pickles fine structurally, but the reduce round-trip raises:
        # __init__'s required second argument is not forwarded.
        class BadReduce(ReproError):
            def __init__(self, message, detail):
                super().__init__(message)
                self.detail = detail

        exc = BadReduce("half-picklable", "detail")
        shipped = _picklable_error(exc)
        assert isinstance(shipped, RemoteWorkerError)
        assert shipped.original_type == "BadReduce"
