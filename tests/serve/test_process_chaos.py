"""Process-mode chaos drills (:mod:`repro.serve.chaos` with real workers).

These drills fork real worker processes, SIGKILL them mid-flight, let
the supervisor heal them and the autoscaler run one up/down cycle, and
demand bit-identical answers against a pristine single-process server
-- plus zero leaked shared-memory segments afterwards.  They are the
pytest twins of the CI ``repro chaos --processes`` job, sized to run in
seconds.
"""

from __future__ import annotations

import glob
import json

from repro.serve import chaos_plan, run_chaos_drill

# Enough simultaneous requests that load-per-replica crosses the
# drill's autoscale high-water mark (2.0) on three shards.
FAST = dict(cap_nnz=2_000, requests_per_matrix=4, value_refreshes=1,
            matrices=("QCD", "Circuit"))


class TestProcessPlan:
    def test_worker_kill_budget(self):
        plan = chaos_plan(seed=3, kills=0, worker_kills=1)
        assert plan.worker_kill(3) is True
        assert plan.worker_kill(3) is False  # budget of one spent
        assert [e.site for e in plan.events] == ["serve.worker_kill"]

    def test_worker_kill_never_fires_on_last_live_worker(self):
        plan = chaos_plan(seed=3, kills=0, worker_kills=2)
        assert plan.worker_kill(1) is False
        assert plan.events == []

    def test_worker_hang_budget(self):
        plan = chaos_plan(seed=5, kills=0, worker_hangs=1)
        assert plan.worker_hang(2) is True
        assert plan.worker_hang(2) is False
        assert [e.site for e in plan.events] == ["serve.worker_hang"]


class TestProcessDrill:
    def test_sigkill_drill_heals_and_stays_bit_identical(self):
        report = run_chaos_drill(
            shards=3, seed=7, processes=True, **FAST
        )
        assert report.passed, report.summary()
        assert report.processes
        assert report.matched == report.requests
        assert report.worker_kills >= 1
        assert report.failovers >= 1
        assert report.restarts + report.degraded >= 1
        assert report.leaked_segments == []
        assert "serve.worker_kill" in report.fault_events

    def test_autoscale_cycle_completes(self):
        report = run_chaos_drill(
            shards=3, seed=7, processes=True, **FAST
        )
        assert report.autoscaled
        assert report.scale_ups >= 1
        assert report.scale_downs >= 1
        scaler = report.fabric_stats["autoscaler"]
        actions = [d["action"] for d in scaler["decisions"]]
        assert "up" in actions and "down" in actions

    def test_hang_drill_detects_and_restarts(self):
        report = run_chaos_drill(
            shards=3, seed=11, processes=True, kills=1, worker_hangs=1,
            reply_timeout_s=6.0, **FAST
        )
        assert report.passed, report.summary()
        assert report.worker_hangs >= 1
        assert report.restarts >= 1
        assert report.leaked_segments == []

    def test_no_shm_segments_leak_across_the_drill(self):
        before = set(glob.glob("/dev/shm/reproshm-*"))
        run_chaos_drill(shards=2, seed=9, processes=True, **FAST)
        assert set(glob.glob("/dev/shm/reproshm-*")) <= before

    def test_report_is_json_able_with_process_fields(self):
        report = run_chaos_drill(
            shards=2, seed=2, processes=True, kills=0, autoscale=False,
            **FAST
        )
        blob = json.loads(json.dumps(report.to_dict()))
        assert blob["processes"] is True
        assert blob["worker_kills"] == 0
        assert blob["leaked_segments"] == []
        assert "restarts" in blob and "scale_ups" in blob
        assert report.passed
