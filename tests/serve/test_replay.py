"""Tests for the JSONL workload replay harness (`repro.serve.replay`)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro import ServeConfig, SpMVEngine, SpMVServer, ValidationError
from repro.serve import ReplaySpec, load_requests, run_replay


class TestReplaySpec:
    def test_defaults(self):
        spec = ReplaySpec(matrix="QCD")
        assert (spec.count, spec.seed, spec.k, spec.timeout_s) == (1, 0, 1, None)

    def test_bad_count_rejected(self):
        with pytest.raises(ValidationError):
            ReplaySpec(matrix="QCD", count=0)

    def test_bad_k_rejected(self):
        with pytest.raises(ValidationError):
            ReplaySpec(matrix="QCD", k=0)

    def test_wrong_typed_fields_rejected(self):
        with pytest.raises(ValidationError, match="count"):
            ReplaySpec(matrix="QCD", count="four")
        with pytest.raises(ValidationError, match="k"):
            ReplaySpec(matrix="QCD", k=None)
        with pytest.raises(ValidationError, match="matrix"):
            ReplaySpec(matrix=7)
        with pytest.raises(ValidationError, match="timeout_s"):
            ReplaySpec(matrix="QCD", timeout_s="fast")
        with pytest.raises(ValidationError, match="seed"):
            ReplaySpec(matrix="QCD", seed=-1)


class TestLoadRequests:
    def test_parses_lines_comments_and_blanks(self, tmp_path):
        p = tmp_path / "reqs.jsonl"
        p.write_text(
            "# warm-up burst\n"
            '{"matrix": "QCD", "count": 4, "seed": 1}\n'
            "\n"
            '{"matrix": "Dense", "count": 2, "k": 3, "cap": 20000}\n'
        )
        specs = load_requests(p)
        assert [s.matrix for s in specs] == ["QCD", "Dense"]
        assert specs[0].count == 4 and specs[0].seed == 1
        assert specs[1].k == 3 and specs[1].cap == 20000

    def test_invalid_json_rejected_with_line_number(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"matrix": "QCD"}\n{oops}\n')
        with pytest.raises(ValidationError, match=":2:"):
            load_requests(p)

    def test_missing_matrix_field_rejected(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"count": 3}\n')
        with pytest.raises(ValidationError, match="'matrix'"):
            load_requests(p)

    def test_unknown_fields_rejected(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"matrix": "QCD", "burst": 9}\n')
        with pytest.raises(ValidationError, match="burst"):
            load_requests(p)

    def test_wrong_typed_fields_rejected_with_line_number(self, tmp_path):
        # Malformed values (not just malformed JSON) must surface as the
        # documented clean ValidationError with file:line context, never
        # as a raw TypeError traceback.
        p = tmp_path / "bad.jsonl"
        p.write_text('{"matrix": "QCD"}\n{"matrix": "QCD", "count": "four"}\n')
        with pytest.raises(ValidationError, match=":2:.*count"):
            load_requests(p)
        p.write_text('{"matrix": "QCD", "k": null}\n')
        with pytest.raises(ValidationError, match=":1:.*k must"):
            load_requests(p)

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("# nothing here\n")
        with pytest.raises(ValidationError, match="no requests"):
            load_requests(p)


class TestRunReplay:
    def test_replay_from_file_verifies_and_reports(self, tmp_path):
        p = tmp_path / "reqs.jsonl"
        p.write_text(
            '{"matrix": "QCD", "count": 6, "cap": 20000}\n'
            '{"matrix": "QCD", "count": 2, "cap": 20000, "seed": 5}\n'
        )
        report = run_replay(p, config=ServeConfig(batch_window_s=0.0))
        assert report.requests == 8
        assert report.ok == 8
        assert report.failed == 0
        assert report.errors == []
        assert report.max_abs_err < 1e-8
        assert report.stats["cache"]["misses"] == 1  # one matrix, one prepare
        assert report.stats["cache"]["hits"] == 7

    def test_multi_rhs_lines(self, tmp_path):
        p = tmp_path / "reqs.jsonl"
        p.write_text('{"matrix": "Dense", "count": 2, "k": 3, "cap": 10000}\n')
        report = run_replay(p, config=ServeConfig(batch_window_s=0.0))
        assert report.requests == 2
        assert report.ok == 2
        assert report.max_abs_err < 1e-8

    def test_replay_against_external_server(self):
        engine = SpMVEngine()
        srv = SpMVServer(engine, ServeConfig(batch_window_s=0.0), start=False)
        specs = [ReplaySpec(matrix="QCD", count=3, cap=20000)]
        report = run_replay(specs, server=srv)
        assert report.ok == 3
        # The caller's server stays open for further traffic.
        A = sparse.random(50, 50, density=0.1, random_state=0, format="csr")
        resp = srv.multiply(A, np.ones(50))
        assert np.allclose(resp.y, A @ np.ones(50))
        srv.close()

    def test_shed_requests_counted_as_errors(self):
        engine = SpMVEngine()
        srv = SpMVServer(
            engine,
            ServeConfig(batch_window_s=0.0, queue_depth=2),
            start=False,
        )
        specs = [ReplaySpec(matrix="QCD", count=5, cap=20000)]
        report = run_replay(specs, server=srv)
        # Threadless server, queue depth 2: 2 admitted, 3 shed.
        assert report.requests == 5
        assert report.ok == 2
        assert report.failed == 3
        assert all("ServerOverloadedError" in e for e in report.errors)
        srv.close()

    def test_report_round_trips_and_summarizes(self, tmp_path):
        import json

        p = tmp_path / "reqs.jsonl"
        p.write_text('{"matrix": "QCD", "count": 4, "cap": 20000}\n')
        report = run_replay(p, config=ServeConfig(batch_window_s=0.0))
        blob = json.loads(json.dumps(report.to_dict()))
        assert blob["kind"] == "replay_report"
        assert blob["requests"] == 4 and blob["failed"] == 0
        text = report.summary()
        assert "requests : 4 (4 ok, 0 failed)" in text
        assert "cache" in text and "max |y - A@x|" in text
