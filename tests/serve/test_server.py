"""Unit tests for :class:`repro.serve.SpMVServer`.

Deterministic (threadless) mode throughout: servers are built with
``start=False`` and processed via :meth:`drain`, so batch formation
depends only on what is queued -- no timing races.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceeded,
    Observer,
    RetryPolicy,
    ServeConfig,
    ServerClosedError,
    ServerOverloadedError,
    SpMVEngine,
    SpMVServer,
    ValidationError,
)
from repro.fault import FaultPlan


def make_matrix(seed: int, n: int = 120, density: float = 0.05):
    return sparse.random(n, n, density=density, random_state=seed, format="csr")


@pytest.fixture
def matrix():
    return make_matrix(1)


@pytest.fixture
def server():
    srv = SpMVServer(start=False, config=ServeConfig(batch_window_s=0.0))
    yield srv
    srv.close()


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestSubmitValidation:
    def test_wrong_length_rejected(self, server, matrix):
        with pytest.raises(ValidationError):
            server.submit(matrix, np.ones(7))

    def test_3d_rhs_rejected(self, server, matrix):
        with pytest.raises(ValidationError):
            server.submit(matrix, np.ones((120, 2, 2)))

    def test_bad_config_rejected(self):
        with pytest.raises(ValidationError):
            ServeConfig(max_batch=0)
        with pytest.raises(ValidationError):
            ServeConfig(batch_window_s=-1.0)
        with pytest.raises(ValidationError):
            ServeConfig(queue_depth=0)


class TestBatching:
    def test_same_matrix_requests_coalesce(self, server, matrix):
        rng = np.random.default_rng(0)
        xs = [rng.standard_normal(120) for _ in range(6)]
        futs = [server.submit(matrix, x) for x in xs]
        server.drain()
        responses = [f.result() for f in futs]
        for x, r in zip(xs, responses):
            assert np.allclose(r.y, matrix @ x)
            assert r.batched and r.batch_size == 6
        assert server.n_batches == 1
        assert server.n_batched_requests == 6

    def test_different_matrices_do_not_coalesce(self, server):
        A, B = make_matrix(1), make_matrix(2)
        fa = server.submit(A, np.ones(120))
        fb = server.submit(B, np.ones(120))
        server.drain()
        assert not fa.result().batched
        assert not fb.result().batched
        assert server.n_batches == 2

    def test_max_batch_respected(self, matrix):
        srv = SpMVServer(
            start=False, config=ServeConfig(max_batch=4, batch_window_s=0.0)
        )
        futs = [server_submit for server_submit in (
            srv.submit(matrix, np.ones(120)) for _ in range(10)
        )]
        srv.drain()
        sizes = sorted(f.result().batch_size for f in futs)
        assert sizes == [2, 2, 4, 4, 4, 4, 4, 4, 4, 4]
        assert srv.n_batches == 3
        srv.close()

    def test_2d_request_dispatches_solo(self, server, matrix):
        X = np.random.default_rng(1).standard_normal((120, 3))
        f1 = server.submit(matrix, np.ones(120))
        f2 = server.submit(matrix, X)
        server.drain()
        assert not f2.result().batched
        assert np.allclose(f2.result().y, matrix @ X)
        # The 1-D request must not have been folded into the 2-D one.
        assert f1.result().y.ndim == 1

    def test_batch_columns_bit_identical_to_sequential(self, matrix):
        eng = SpMVEngine()
        srv = SpMVServer(eng, ServeConfig(batch_window_s=0.0), start=False)
        prepared = eng.prepare(matrix)
        rng = np.random.default_rng(3)
        xs = [rng.standard_normal(120) for _ in range(5)]
        futs = [srv.submit(matrix, x) for x in xs]
        srv.drain()
        for x, f in zip(xs, futs):
            expected = eng.multiply(prepared, x).y
            assert np.array_equal(f.result().y, expected)  # bit-identical
        srv.close()

    def test_wide_batches_split_to_device_limit(self, matrix):
        obs = Observer()
        eng = SpMVEngine(observer=obs)
        prepared = eng.prepare(matrix)
        max_k = eng.max_batch_width(prepared)
        n = max_k + 3
        srv = SpMVServer(
            eng,
            ServeConfig(max_batch=n, batch_window_s=0.0),
            observer=obs,
            start=False,
        )
        rng = np.random.default_rng(4)
        xs = [rng.standard_normal(120) for _ in range(n)]
        futs = [srv.submit(matrix, x) for x in xs]
        srv.drain()
        for x, f in zip(xs, futs):
            assert np.allclose(f.result().y, matrix @ x)
        # One coalesced batch, split into ceil(n / max_k) dispatches --
        # never a KernelConfigError, never a per-vector fallback.
        assert srv.n_batch_fallbacks == 0
        assert srv.n_batches == -(-n // max_k)
        spans = obs.tracer.find_all("serve.batch")
        assert len(spans) == 1
        assert spans[0].attrs["split_k"] == max_k
        srv.close()


class TestCaching:
    def test_hits_plus_misses_equals_requests(self, server, matrix):
        futs = [server.submit(matrix, np.ones(120)) for _ in range(7)]
        server.drain()
        for f in futs:
            f.result()
        assert server.cache.hits + server.cache.misses == 7
        assert server.cache.misses == 1  # one prepare for the whole burst

    def test_cache_hit_skips_prepare(self, matrix):
        obs = Observer()
        srv = SpMVServer(
            SpMVEngine(observer=obs),
            ServeConfig(batch_window_s=0.0),
            observer=obs,
            start=False,
        )
        srv.multiply(matrix, np.ones(120))
        prepares_before = len(obs.tracer.find_all("engine.prepare"))
        r = srv.multiply(matrix, np.ones(120))
        assert r.cache_hit
        assert len(obs.tracer.find_all("engine.prepare")) == prepares_before
        srv.close()

    def test_pre_prepared_matrix_admitted_without_tuning(self, matrix):
        obs = Observer()
        eng = SpMVEngine(observer=obs)
        prepared = eng.prepare(matrix)
        srv = SpMVServer(eng, ServeConfig(batch_window_s=0.0), observer=obs, start=False)
        prepares_before = len(obs.tracer.find_all("engine.prepare"))
        r = srv.multiply(prepared, np.ones(120))
        assert np.allclose(r.y, matrix @ np.ones(120))
        assert len(obs.tracer.find_all("engine.prepare")) == prepares_before
        srv.close()

    def test_same_structure_different_values_not_conflated(self, server):
        # The iterative-solver pattern: identical sparsity, refreshed
        # values.  The serve key hashes values, so the second matrix
        # must get its own prepare/cache entry and its own product --
        # and the two must never coalesce into one batch.
        A = make_matrix(1)
        B = A.copy()
        B.data = B.data * 2.0 + 1.0
        x = np.random.default_rng(7).standard_normal(120)
        fa = server.submit(A, x)
        fb = server.submit(B, x)
        server.drain()
        assert np.allclose(fa.result().y, A @ x)
        assert np.allclose(fb.result().y, B @ x)
        assert not np.allclose(fa.result().y, fb.result().y)
        assert not fa.result().batched and not fb.result().batched
        assert server.n_batches == 2
        assert server.cache.misses == 2

    def test_value_refresh_after_cache_hit_recomputes(self, server):
        # Sequential flavour of the same pattern: serve A, update the
        # values in place of a structural copy, serve again -- the
        # second answer must come from the new values, not the entry
        # cached for the old ones.
        A = make_matrix(2)
        x = np.ones(120)
        assert np.allclose(server.multiply(A, x).y, A @ x)
        A2 = A.copy()
        A2.data = A2.data + 0.5
        r = server.multiply(A2, x)
        assert np.allclose(r.y, A2 @ x)
        assert not r.cache_hit
        assert server.cache.misses == 2

    def test_eviction_under_tiny_budget(self):
        srv = SpMVServer(
            start=False,
            config=ServeConfig(batch_window_s=0.0, cache_budget_bytes=1),
        )
        A, B = make_matrix(1), make_matrix(2)
        srv.multiply(A, np.ones(120))
        srv.multiply(B, np.ones(120))
        assert srv.cache.evictions == 1
        assert len(srv.cache) == 1
        srv.close()


class TestBackpressure:
    def test_overload_sheds_with_typed_error(self, matrix):
        srv = SpMVServer(
            start=False,
            config=ServeConfig(queue_depth=3, batch_window_s=0.0),
        )
        for _ in range(3):
            srv.submit(matrix, np.ones(120))
        with pytest.raises(ServerOverloadedError) as exc_info:
            srv.submit(matrix, np.ones(120))
        assert exc_info.value.queue_depth == 3
        assert exc_info.value.pending == 3
        assert srv.n_shed == 1
        srv.drain()
        assert srv.n_responses == 3
        srv.close()

    def test_deadline_expired_in_queue(self, matrix):
        clock = FakeClock()
        srv = SpMVServer(
            start=False,
            config=ServeConfig(batch_window_s=0.0),
            clock=clock,
        )
        fut = srv.submit(matrix, np.ones(120), timeout_s=0.5)
        clock.advance(1.0)
        srv.drain()
        with pytest.raises(DeadlineExceeded):
            fut.result()
        assert srv.n_deadline_expired == 1
        srv.close()

    def test_default_timeout_from_config(self, matrix):
        clock = FakeClock()
        srv = SpMVServer(
            start=False,
            config=ServeConfig(batch_window_s=0.0, default_timeout_s=0.25),
            clock=clock,
        )
        fut = srv.submit(matrix, np.ones(120))
        clock.advance(0.5)
        srv.drain()
        assert isinstance(fut.exception(), DeadlineExceeded)
        srv.close()

    def test_live_requests_survive_expired_neighbours(self, matrix):
        clock = FakeClock()
        srv = SpMVServer(
            start=False, config=ServeConfig(batch_window_s=0.0), clock=clock
        )
        doomed = srv.submit(matrix, np.ones(120), timeout_s=0.1)
        healthy = srv.submit(matrix, np.ones(120))
        clock.advance(1.0)
        srv.drain()
        assert isinstance(doomed.exception(), DeadlineExceeded)
        assert np.allclose(healthy.result().y, matrix @ np.ones(120))
        srv.close()


class TestContainment:
    def test_batch_fallback_when_batch_dispatch_fails(self, matrix, monkeypatch):
        # A poisoned batch must not fail its members: when the coalesced
        # SpMM dispatch raises, the server re-runs each request alone.
        from repro.errors import KernelConfigError

        eng = SpMVEngine()
        srv = SpMVServer(eng, ServeConfig(batch_window_s=0.0), start=False)

        def boom(prepared, X):
            raise KernelConfigError("injected batch failure")

        monkeypatch.setattr(eng, "multiply_many", boom)
        rng = np.random.default_rng(5)
        xs = [rng.standard_normal(120) for _ in range(4)]
        futs = [srv.submit(matrix, x) for x in xs]
        srv.drain()
        for x, f in zip(xs, futs):
            r = f.result()
            assert np.allclose(r.y, matrix @ x)
            assert not r.batched  # served by the per-vector fallback
        assert srv.n_batch_fallbacks == 1
        srv.close()

    def test_injected_fault_contained_by_engine(self, matrix):
        # A permissive engine's own fallback chain absorbs injected
        # faults; the served batch stays on the SpMM path and the
        # answers stay correct.
        eng = SpMVEngine(
            policy="permissive",
            fault_plan=FaultPlan.single("sync.stale_grp_sum", seed=7, count=None),
        )
        srv = SpMVServer(eng, ServeConfig(batch_window_s=0.0), start=False)
        rng = np.random.default_rng(5)
        xs = [rng.standard_normal(120) for _ in range(4)]
        futs = [srv.submit(matrix, x) for x in xs]
        srv.drain()
        for x, f in zip(xs, futs):
            assert np.allclose(f.result().y, matrix @ x)
        assert srv.n_batch_fallbacks == 0
        srv.close()

    def test_breaker_rejects_after_trips(self, matrix):
        # Strict engine + always-on NaN injection: every dispatch raises,
        # the per-family circuit trips, and later requests shed fast.
        eng = SpMVEngine(
            policy="strict",
            validate=True,
            fault_plan=FaultPlan.single("kernel.nan_partial", seed=1, count=None),
        )
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=3600.0)
        srv = SpMVServer(
            eng, ServeConfig(batch_window_s=0.0), breaker=breaker, start=False
        )
        errors = []
        for _ in range(4):
            fut = srv.submit(matrix, np.ones(120))
            srv.drain()
            errors.append(fut.exception())
        assert all(e is not None for e in errors)
        assert any(isinstance(e, CircuitOpenError) for e in errors)
        assert srv.n_breaker_rejections >= 1
        srv.close()

    def test_retry_policy_recovers_transient_fault(self, matrix):
        # count=1: exactly the first kernel execution is poisoned; the
        # server-level retry re-dispatches and the second attempt is clean.
        eng = SpMVEngine(
            policy="strict",
            validate=True,
            fault_plan=FaultPlan.single("kernel.nan_partial", seed=1, count=1),
        )
        srv = SpMVServer(
            eng,
            ServeConfig(batch_window_s=0.0),
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            start=False,
        )
        r = srv.multiply(matrix, np.ones(120))
        assert np.allclose(r.y, matrix @ np.ones(120))
        srv.close()

    def test_invalid_retry_and_breaker_types_rejected(self):
        with pytest.raises(ValidationError):
            SpMVServer(start=False, retry_policy=object())
        with pytest.raises(ValidationError):
            SpMVServer(start=False, breaker=object())


class TestLifecycle:
    def test_submit_after_close_raises(self, matrix):
        srv = SpMVServer(start=False, config=ServeConfig(batch_window_s=0.0))
        srv.close()
        with pytest.raises(ServerClosedError):
            srv.submit(matrix, np.ones(120))

    def test_close_without_drain_fails_queued_futures(self, matrix):
        srv = SpMVServer(start=False, config=ServeConfig(batch_window_s=0.0))
        fut = srv.submit(matrix, np.ones(120))
        srv.close(drain=False)
        assert isinstance(fut.exception(), ServerClosedError)

    def test_close_with_drain_completes_queued_futures(self, matrix):
        srv = SpMVServer(start=False, config=ServeConfig(batch_window_s=0.0))
        fut = srv.submit(matrix, np.ones(120))
        srv.close(drain=True)
        assert np.allclose(fut.result().y, matrix @ np.ones(120))

    def test_close_idempotent(self):
        srv = SpMVServer(start=False)
        srv.close()
        srv.close()

    def test_context_manager(self, matrix):
        with SpMVServer(start=False, config=ServeConfig(batch_window_s=0.0)) as srv:
            fut = srv.submit(matrix, np.ones(120))
        assert np.allclose(fut.result().y, matrix @ np.ones(120))

    def test_threaded_server_round_trip(self, matrix):
        with SpMVServer(config=ServeConfig(batch_window_s=0.001)) as srv:
            rng = np.random.default_rng(6)
            xs = [rng.standard_normal(120) for _ in range(8)]
            futs = [srv.submit(matrix, x) for x in xs]
            for x, f in zip(xs, futs):
                assert np.allclose(f.result(timeout=60).y, matrix @ x)

    def test_drain_waits_out_the_batch_window(self, matrix):
        # Regression: the dispatcher pops requests before waiting out
        # the batch window; drain() must not observe that gap (empty
        # queue, nothing in flight) and return early.
        srv = SpMVServer(config=ServeConfig(batch_window_s=0.2))
        fut = srv.submit(matrix, np.ones(120))
        srv.drain()
        assert fut.done()
        assert np.allclose(fut.result().y, matrix @ np.ones(120))
        srv.close()

    def test_future_timeout(self, matrix):
        srv = SpMVServer(start=False, config=ServeConfig(batch_window_s=0.0))
        fut = srv.submit(matrix, np.ones(120))
        with pytest.raises(TimeoutError):
            fut.result(timeout=0.01)  # never drained
        srv.close()

    def test_future_timeout_is_typed_and_picklable(self, matrix):
        import pickle

        from repro.errors import ServeTimeout

        srv = SpMVServer(start=False, config=ServeConfig(batch_window_s=0.0))
        fut = srv.submit(matrix, np.ones(120))
        with pytest.raises(ServeTimeout) as exc_info:
            fut.result(timeout=0.01)
        assert exc_info.value.waited_s == pytest.approx(0.01)
        assert isinstance(exc_info.value, TimeoutError)  # stdlib-compatible
        with pytest.raises(ServeTimeout):
            fut.exception(timeout=0.01)
        clone = pickle.loads(pickle.dumps(exc_info.value))
        assert isinstance(clone, ServeTimeout)
        assert str(clone) == str(exc_info.value)
        srv.close(drain=False)

    def test_threaded_close_without_drain_fails_queued_futures(self, matrix):
        # Regression: close(drain=False) on a *threaded* server must
        # fail still-queued futures promptly -- even while the
        # dispatcher is stuck mid-batch -- instead of leaving result()
        # callers blocked forever.
        import threading

        release = threading.Event()
        started = threading.Event()

        class BlockingEngine(SpMVEngine):
            def multiply(self, *args, **kwargs):
                started.set()
                release.wait(10.0)
                return super().multiply(*args, **kwargs)

            def multiply_many(self, *args, **kwargs):
                started.set()
                release.wait(10.0)
                return super().multiply_many(*args, **kwargs)

        srv = SpMVServer(
            BlockingEngine(), ServeConfig(batch_window_s=0.0, max_batch=1)
        )
        in_flight = srv.submit(matrix, np.ones(120))
        assert started.wait(10.0)  # dispatcher is mid-batch on in_flight
        queued = srv.submit(matrix, np.ones(120))
        closer = threading.Thread(target=lambda: srv.close(drain=False))
        closer.start()
        # The queued future fails promptly, while the dispatcher is
        # still blocked on the in-flight batch.
        assert isinstance(queued.exception(timeout=5.0), ServerClosedError)
        assert not in_flight.done()
        # The in-flight batch still completes -- the work was already
        # "on the device" when the server was killed.
        release.set()
        closer.join(10.0)
        assert not closer.is_alive()
        assert np.allclose(
            in_flight.result(timeout=5.0).y, matrix @ np.ones(120)
        )

    def test_kill_fails_queued_with_custom_error(self, matrix):
        from repro.errors import ShardCrashError

        srv = SpMVServer(start=False, config=ServeConfig(batch_window_s=0.0))
        srv.multiply(matrix, np.ones(120))  # populate the cache
        fut = srv.submit(matrix, np.ones(120))
        doomed = srv.kill(ShardCrashError("shard died", shard="shard-0"))
        assert doomed == 1
        with pytest.raises(ShardCrashError) as exc_info:
            fut.result(timeout=0)
        assert exc_info.value.shard == "shard-0"
        # A killed shard loses its device memory: the cache is dropped.
        assert len(srv.cache) == 0
        with pytest.raises(ServerClosedError):
            srv.submit(matrix, np.ones(120))

    def test_unexpected_exception_contained(self, matrix, monkeypatch):
        # A non-ReproError escaping the dispatch path must resolve the
        # batch's futures (and count an internal error), not kill the
        # dispatcher with callers blocked.
        srv = SpMVServer(start=False, config=ServeConfig(batch_window_s=0.0))

        def boom(*args, **kwargs):
            raise RuntimeError("unexpected bug in prepare")

        monkeypatch.setattr(srv.engine, "prepare", boom)
        fut = srv.submit(matrix, np.ones(120))
        srv.drain()
        with pytest.raises(RuntimeError):
            fut.result(timeout=0)
        assert srv.n_internal_errors == 1
        assert srv.stats()["internal_errors"] == 1
        monkeypatch.undo()
        # The server keeps serving afterwards.
        fut2 = srv.submit(matrix, np.ones(120))
        srv.drain()
        assert np.allclose(fut2.result(timeout=0).y, matrix @ np.ones(120))
        srv.close()


class TestObservability:
    def test_serve_metrics_reconcile_with_plain_counters(self, matrix):
        obs = Observer()
        srv = SpMVServer(
            SpMVEngine(observer=obs),
            ServeConfig(batch_window_s=0.0),
            observer=obs,
            start=False,
        )
        futs = [srv.submit(matrix, np.ones(120)) for _ in range(5)]
        srv.drain()
        for f in futs:
            f.result()
        m = obs.metrics
        assert m.get("serve.requests").value() == srv.n_requests == 5
        assert m.get("serve.responses").value() == srv.n_responses == 5
        assert m.get("serve.batches").value() == srv.n_batches
        assert (
            m.get("serve.cache.hits").value()
            + m.get("serve.cache.misses").value()
            == 5
        )
        spans = obs.tracer.find_all("serve.batch")
        assert len(spans) == srv.n_batches
        assert sum(s.attrs["size"] for s in spans) == 5
        srv.close()

    def test_explicit_observer_installed_on_engine(self):
        obs = Observer()
        srv = SpMVServer(observer=obs, start=False)
        assert srv.engine.observer is obs
        srv.close()

    def test_stats_shape(self, server, matrix):
        server.multiply(matrix, np.ones(120))
        snap = server.stats()
        for field in (
            "requests", "responses", "shed", "batches", "batched_requests",
            "batch_fallbacks", "deadline_expiries", "breaker_rejections",
            "queued", "cache",
        ):
            assert field in snap
        assert snap["requests"] == 1
        assert snap["cache"]["misses"] == 1
