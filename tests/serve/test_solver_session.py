"""Solver sessions through the serve layer: bit-identity, failover,
value refresh, and the serve layer's fast-backend default.

The tentpole contract: a solve whose iterations stream through a server
or fabric is *bit-identical* -- every iterate, every residual, the
final solution -- to the in-process solve, under both backends and
under a seeded mid-solve shard crash.  The serve layer may add routing,
caching, batching and failover; it must never add semantics.
"""

import numpy as np
import pytest
from scipy import sparse

from repro import ServeFabric, SpMVEngine, SpMVServer, solve
from repro.errors import ReproError
from repro.fault import FaultPlan
from repro.fault.injection import fault_scope
from repro.serve import WorkerConfig, run_chaos_drill
from repro.solvers import SolverSession


def spd_system(n=150):
    A = sparse.diags([-1.0, 4.0, -1.0], [-1, 0, 1], shape=(n, n)).tocsr()
    return A, np.ones(n)


def nonsymmetric_system(n=120, seed=7):
    A = sparse.random(n, n, density=0.05, random_state=seed, format="csr")
    return (A + sparse.eye(n) * 10.0).tocsr(), np.ones(n)


def assert_bit_identical(direct, served):
    assert np.array_equal(direct.x, served.x)
    assert direct.history == served.history
    assert len(direct.iterates) == len(served.iterates)
    for d, s in zip(direct.iterates, served.iterates):
        assert np.array_equal(d, s)


class TestServedBitIdentity:
    @pytest.mark.parametrize("backend", ["faithful", "fast"])
    @pytest.mark.parametrize(
        "method,system", [("cg", spd_system), ("gmres", nonsymmetric_system)]
    )
    def test_server_matches_direct(self, backend, method, system):
        A, b = system()
        direct = solve(A, b, method=method, backend=backend,
                       keep_iterates=True)
        server = SpMVServer(SpMVEngine(backend=backend), start=False)
        try:
            served = solve(A, b, method=method, server=server,
                           keep_iterates=True)
        finally:
            server.close()
        assert served.served and not direct.served
        assert_bit_identical(direct, served)

    def test_fabric_matches_direct(self):
        A, b = nonsymmetric_system()
        direct = solve(A, b, method="gmres", restart=30, keep_iterates=True)
        fabric = ServeFabric(3, start=False)
        try:
            served = solve(A, b, method="gmres", restart=30, server=fabric,
                           keep_iterates=True)
        finally:
            fabric.close()
        assert_bit_identical(direct, served)

    def test_session_prime_makes_iterations_cache_hits(self):
        A, b = spd_system()
        server = SpMVServer(start=False)
        try:
            res = solve(A, b, method="cg", server=server)
        finally:
            server.close()
        # The session primes its prepared matrix before the first
        # request, so every iteration hits the serve cache.
        assert res.cache_hits == res.spmv_count

    def test_threaded_server_also_identical(self):
        A, b = spd_system()
        direct = solve(A, b, method="cg", keep_iterates=True)
        server = SpMVServer()  # background pump thread
        try:
            served = solve(A, b, method="cg", server=server,
                           keep_iterates=True)
        finally:
            server.close()
        assert_bit_identical(direct, served)


class TestMidSolveFailover:
    def test_shard_crash_does_not_perturb_the_solve(self):
        A, b = spd_system()
        direct = solve(A, b, method="gmres", restart=30, keep_iterates=True)
        plan = FaultPlan.parse("serve.shard_crash:p=0.6,count=2,seed=7")
        fabric = ServeFabric(3, start=False)
        try:
            with fault_scope(plan):
                served = solve(A, b, method="gmres", restart=30,
                               server=fabric, keep_iterates=True)
        finally:
            fabric.close()
        assert served.failovers >= 1, "seeded crash produced no failover"
        assert_bit_identical(direct, served)

    def test_cg_under_crash_and_fast_backend(self):
        A, b = spd_system()
        direct = solve(A, b, method="cg", backend="fast", keep_iterates=True)
        plan = FaultPlan.parse("serve.shard_crash:p=0.5,count=1,seed=11")
        fabric = ServeFabric(3, backend="fast", start=False)
        try:
            with fault_scope(plan):
                served = solve(A, b, method="cg", server=fabric,
                               keep_iterates=True)
        finally:
            fabric.close()
        assert served.failovers >= 1
        assert_bit_identical(direct, served)


class TestMidSolveWorkerDeath:
    """Satellite: real SIGKILLs of forked workers mid-solve.

    Unlike ``serve.shard_crash`` (permanent, in-process), a
    ``serve.worker_kill`` leaves the shard alive: the in-flight
    iteration fails over to a surviving worker and the supervisor
    respawns the dead one, re-warming the session's primed matrix from
    its shared-memory segments.  The solve must not notice any of it.
    """

    def test_worker_sigkill_does_not_perturb_the_solve(self):
        A, b = spd_system()
        direct = solve(A, b, method="cg", keep_iterates=True)
        plan = FaultPlan.parse("serve.worker_kill:p=0.6,count=2,seed=7")
        fabric = ServeFabric(
            3, start=False, processes=True,
            worker_config=WorkerConfig(reply_timeout_s=30.0),
        )
        try:
            with fault_scope(plan):
                served = solve(A, b, method="cg", server=fabric,
                               keep_iterates=True)
            # Let the supervisor finish healing the killed workers.
            fabric.tick(rounds=4)
            stats = fabric.stats()
        finally:
            fabric.close()
        assert stats["worker_kills"] >= 1, "seeded kill never fired"
        assert served.failovers >= 1
        sup = stats["supervisor"]
        assert sup["restarts"] + sup["degraded"] >= 1
        assert_bit_identical(direct, served)

    def test_gmres_under_worker_kill(self):
        A, b = nonsymmetric_system()
        direct = solve(A, b, method="gmres", restart=30, keep_iterates=True)
        plan = FaultPlan.parse("serve.worker_kill:p=0.5,count=1,seed=3")
        fabric = ServeFabric(
            2, start=False, processes=True,
            worker_config=WorkerConfig(reply_timeout_s=30.0),
        )
        try:
            with fault_scope(plan):
                served = solve(A, b, method="gmres", restart=30,
                               server=fabric, keep_iterates=True)
            fabric.tick(rounds=4)
            stats = fabric.stats()
        finally:
            fabric.close()
        assert stats["worker_kills"] >= 1
        assert served.failovers >= 1
        assert_bit_identical(direct, served)


class TestSessionValueRefresh:
    def test_refresh_gets_new_cache_entry_plan_reused(self):
        A, b = spd_system()
        server = SpMVServer(start=False)
        try:
            sess = SolverSession(A, server=server)
            first = sess.prepared
            r1 = sess.solve(b, method="cg")
            entries_before = len(server.cache)
            sess.update_values(A * 1.5)
            # New value digest -> new serve key -> a second cache entry;
            # the structural plan is the same object.
            assert len(server.cache) == entries_before + 1
            assert sess.prepared.point is first.point
            assert sess.prepared.fmt.flags is first.fmt.flags
            r2 = sess.solve(b, method="cg")
        finally:
            server.close()
        assert r1.converged and r2.converged
        A2 = (A * 1.5).tocsr()
        np.testing.assert_allclose(
            np.asarray(A2 @ r2.x).ravel(), b, atol=1e-7
        )
        assert sess.value_refreshes == 1

    def test_refreshed_solve_matches_fresh_system(self):
        A, b = spd_system()
        sess = SolverSession(A, engine=SpMVEngine(backend="fast"))
        sess.solve(b, method="cg")
        A2 = (A * 2.0).tocsr()
        sess.update_values(A2)
        refreshed = sess.solve(b, method="cg", keep_iterates=True)
        fresh = solve(A2, b, method="cg", backend="fast", keep_iterates=True)
        assert_bit_identical(fresh, refreshed)


class TestSessionValidation:
    def test_prepared_without_engine_rejected(self):
        A, b = spd_system()
        eng = SpMVEngine()
        prep = eng.prepare(A)
        with pytest.raises(ReproError, match="engine"):
            SolverSession(prep)

    def test_bogus_server_rejected(self):
        A, _ = spd_system()
        with pytest.raises(ReproError, match="server"):
            SolverSession(A, server=object())

    def test_session_counters_accumulate_across_solves(self):
        A, b = spd_system()
        sess = SolverSession(A)
        r1 = sess.solve(b, method="cg")
        r2 = sess.solve(b, method="cg")
        assert sess.spmv_count == r1.spmv_count + r2.spmv_count
        # Per-solve results report deltas, not session totals.
        assert r2.spmv_count == r1.spmv_count


class TestServeBackendDefault:
    """The serve layer defaults to the fast backend (PR pin)."""

    def test_server_default_engine_is_fast(self):
        server = SpMVServer(start=False)
        try:
            assert server.engine.backend.name == "fast"
        finally:
            server.close()

    def test_fabric_default_shards_are_fast(self):
        fabric = ServeFabric(2, start=False)
        try:
            assert all(
                s.engine.backend.name == "fast" for s in fabric.shards
            )
        finally:
            fabric.close()

    def test_explicit_engine_is_respected(self):
        eng = SpMVEngine(backend="faithful")
        server = SpMVServer(eng, start=False)
        try:
            assert server.engine is eng
            assert server.engine.backend.name == "faithful"
        finally:
            server.close()

    def test_chaos_drill_still_passes_with_fast_default(self):
        # The drill's golden arbiter pins an explicit faithful engine;
        # the serve default flip must leave it bit-exact.
        report = run_chaos_drill(
            shards=3, seed=7, cap_nnz=2_000, requests_per_matrix=2, kills=1
        )
        assert report.passed, report.summary()
