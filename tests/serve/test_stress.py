"""Concurrency stress: many client threads against one threaded server.

Invariants pinned here:

* no lost responses -- every submitted request's future completes;
* no duplicated or cross-wired responses -- each answer matches *its own*
  request's ``A @ x``;
* the per-request cache accounting reconciles exactly:
  ``cache.hits + cache.misses == admitted requests``;
* the ``serve.*`` metrics reconcile with the tracer:
  ``serve.batches == #serve.batch spans`` and the span ``size``
  attributes sum to the admitted request count.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from scipy import sparse

from repro import Observer, ServeConfig, ServerOverloadedError, SpMVEngine, SpMVServer

N = 100
N_THREADS = 8
REQUESTS_PER_THREAD = 12


@pytest.fixture(scope="module")
def matrices():
    return [
        sparse.random(N, N, density=0.05, random_state=seed, format="csr")
        for seed in (1, 2, 3)
    ]


def run_stress(server, matrices):
    """Fire N_THREADS * REQUESTS_PER_THREAD requests; return outcomes."""
    results = []  # (matrix_index, x, future)
    lock = threading.Lock()
    shed = [0]
    start = threading.Barrier(N_THREADS)

    def client(tid: int) -> None:
        rng = np.random.default_rng(1000 + tid)
        start.wait()
        for i in range(REQUESTS_PER_THREAD):
            m = (tid + i) % len(matrices)
            x = rng.standard_normal(N)
            try:
                fut = server.submit(matrices[m], x)
            except ServerOverloadedError:
                with lock:
                    shed[0] += 1
                continue
            with lock:
                results.append((m, x, fut))

    threads = [
        threading.Thread(target=client, args=(tid,)) for tid in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    server.drain()
    return results, shed[0]


class TestStress:
    def test_no_lost_or_crosswired_responses(self, matrices):
        obs = Observer()
        engine = SpMVEngine(observer=obs)
        # Warm the tuner outside the clock: the stress run then measures
        # pure serving behaviour, not three tuning searches.
        prepared = [engine.prepare(A) for A in matrices]
        # Keep batches within every matrix's device shared-memory width so
        # dispatches are never chunked -- then one serve.batch span maps
        # to exactly one counted dispatch and the equality below is exact.
        max_batch = min([16] + [engine.max_batch_width(p) for p in prepared])
        server = SpMVServer(
            engine,
            ServeConfig(
                max_batch=max_batch, batch_window_s=0.001, queue_depth=4096
            ),
            observer=obs,
            start=True,
        )
        try:
            results, shed = run_stress(server, matrices)
            total = N_THREADS * REQUESTS_PER_THREAD
            assert shed == 0  # queue_depth ample: nothing shed
            assert len(results) == total

            # Every future completes with its own request's answer.
            for m, x, fut in results:
                r = fut.result(timeout=120)
                assert np.allclose(r.y, matrices[m] @ x, rtol=1e-9, atol=1e-9)

            # Counter reconciliation: responses cover every admitted
            # request exactly once.
            assert server.n_requests == total
            assert server.n_responses == total

            # Cache accounting: one logical lookup per request.
            assert server.cache.hits + server.cache.misses == total
            assert server.cache.misses == len(matrices)
            assert server.cache.hits == total - len(matrices)

            # Tracer reconciliation: one serve.batch span per formed
            # batch, and their sizes partition the admitted requests.
            spans = obs.tracer.find_all("serve.batch")
            assert len(spans) == server.n_batches + server.n_batch_fallbacks
            assert sum(s.attrs["size"] for s in spans) == total

            m = obs.metrics
            assert m.get("serve.requests").value() == total
            assert m.get("serve.responses").value() == total
            assert (
                m.get("serve.cache.hits").value()
                + m.get("serve.cache.misses").value()
                == total
            )
        finally:
            server.close()

    def test_backpressure_under_tiny_queue(self, matrices):
        """With queue_depth=2 some requests must shed -- and every
        admitted one still completes correctly."""
        engine = SpMVEngine()
        for A in matrices:
            engine.prepare(A)
        server = SpMVServer(
            engine,
            ServeConfig(max_batch=4, batch_window_s=0.0, queue_depth=2),
            start=True,
        )
        try:
            results, shed = run_stress(server, matrices)
            total = N_THREADS * REQUESTS_PER_THREAD
            assert len(results) + shed == total
            assert server.n_requests == len(results)
            assert server.n_shed == shed
            for m, x, fut in results:
                r = fut.result(timeout=120)
                assert np.allclose(r.y, matrices[m] @ x, rtol=1e-9, atol=1e-9)
            assert server.n_responses == len(results)
        finally:
            server.close()

    def test_concurrent_submit_and_close(self, matrices):
        """Closing while clients submit never loses an admitted future:
        each either completes or fails with a typed server error."""
        from repro import ServerClosedError

        engine = SpMVEngine()
        engine.prepare(matrices[0])
        server = SpMVServer(
            engine, ServeConfig(max_batch=8, batch_window_s=0.001), start=True
        )
        futs = []
        lock = threading.Lock()
        stop = threading.Event()

        def client():
            rng = np.random.default_rng(0)
            while not stop.is_set():
                try:
                    f = server.submit(matrices[0], rng.standard_normal(N))
                except (ServerClosedError, ServerOverloadedError):
                    return
                with lock:
                    futs.append(f)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        # Let some traffic through, then close mid-flight.
        while True:
            with lock:
                if len(futs) >= 20:
                    break
        server.close(drain=True)
        stop.set()
        for t in threads:
            t.join()
        completed = 0
        for f in futs:
            exc = f.exception(timeout=60)
            if exc is None:
                completed += 1
            else:
                assert isinstance(exc, ServerClosedError)
        assert completed >= 20
