"""Tests for worker supervision and autoscaling
(:mod:`repro.serve.supervisor`).

The supervisor half runs against real forked workers (restart ladders,
heartbeat miss budgets, orphan reaping are only meaningful against a
live OS); the autoscaler half is a pure policy state machine and is
tested as one.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest
from scipy import sparse

from repro import SpMVEngine
from repro.core.shm import reap_orphans
from repro.errors import ValidationError
from repro.fault.retry import RetryPolicy
from repro.serve import (
    Autoscaler,
    AutoscalePolicy,
    ServeConfig,
    ShardSupervisor,
    SpMVServer,
    SupervisorConfig,
    WorkerConfig,
)
from repro.serve.workers import ProcessShard


class Holder:
    """Minimal stand-in for the fabric's ``_Shard`` bookkeeping."""

    def __init__(self, name, server):
        self.name = name
        self.server = server
        self.dead = False
        self.retired = False


@pytest.fixture(scope="module")
def engine():
    return SpMVEngine(device="gtx680", backend="fast")


@pytest.fixture(scope="module")
def system(engine):
    rng = np.random.default_rng(5)
    A = sparse.random(48, 48, density=0.1, random_state=5, format="csr")
    A.data = rng.standard_normal(A.nnz)
    x = rng.standard_normal(48)
    golden = engine.multiply(A, x).y
    prepared = engine.prepare(A)
    return A, x, golden, prepared


def make_worker(engine, prepared, **worker_kwargs):
    worker_kwargs.setdefault("reply_timeout_s", 30.0)
    shard = ProcessShard(
        engine,
        ServeConfig(batch_window_s=0.0),
        name="sup-test",
        worker_config=WorkerConfig(**worker_kwargs),
    )
    shard.prime(prepared)
    return shard


class TestSupervisorConfig:
    def test_rejects_bad_miss_budget(self):
        with pytest.raises(ValidationError):
            SupervisorConfig(miss_budget=0)


class TestRestartLadder:
    def test_tick_restarts_a_sigkilled_worker(self, engine, system):
        A, x, golden, prepared = system
        worker = make_worker(engine, prepared)
        holder = Holder("sup-test", worker)
        sup = ShardSupervisor(SupervisorConfig(
            restart_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0)
        ))
        try:
            worker.kill_process()
            assert not worker.alive
            sup.tick([holder])
            assert worker.alive
            assert sup.n_restarts == 1
            restart = [d for d in sup.decisions if d["action"] == "restart"]
            assert restart and restart[0]["exit_code"] < 0
            assert restart[0]["warm_mode"] == "shared"
            resp = worker.multiply(A, x)
            assert resp.cache_hit
            assert np.array_equal(resp.y, golden)
        finally:
            worker.close()

    def test_dead_and_retired_shards_are_skipped(self, engine, system):
        _, _, _, prepared = system
        worker = make_worker(engine, prepared)
        holder = Holder("sup-test", worker)
        sup = ShardSupervisor()
        try:
            worker.kill_process()
            holder.dead = True
            sup.tick([holder])
            assert not worker.alive and sup.n_restarts == 0
            holder.dead = False
            holder.retired = True
            sup.tick([holder])
            assert not worker.alive and sup.n_restarts == 0
        finally:
            worker.close()

    def test_in_process_servers_are_ignored(self, engine):
        server = SpMVServer(engine, start=False)
        sup = ShardSupervisor()
        sup.tick([Holder("plain", server)])
        assert sup.decisions == []
        server.close()

    def test_exhausted_restarts_degrade_to_in_process(self, engine, system):
        A, x, golden, prepared = system
        worker = make_worker(engine, prepared)
        holder = Holder("sup-test", worker)

        def degrade_factory(shard):
            return SpMVServer(
                engine, ServeConfig(batch_window_s=0.0), start=False
            )

        sup = ShardSupervisor(
            SupervisorConfig(restart_policy=RetryPolicy(
                max_attempts=2, base_delay_s=0.0
            )),
            degrade_factory=degrade_factory,
        )
        try:
            worker.kill_process()
            worker.spawn = _raise_spawn  # every respawn attempt fails
            for _ in range(4):
                sup.tick([holder])
            assert sup.n_degraded == 1
            actions = [d["action"] for d in sup.decisions]
            assert actions.count("restart_failed") == 2
            assert actions[-1] == "degrade"
            # The fallback is an in-process server, pre-warmed with the
            # worker's primed handles, still bit-identical.
            assert isinstance(holder.server, SpMVServer)
            future = holder.server.submit(A, x)
            holder.server.drain()
            resp = future.result(timeout=0)
            assert resp.cache_hit
            assert np.array_equal(resp.y, golden)
            # Degraded shards are not healed again.
            sup.tick([holder])
            assert sup.n_degraded == 1
        finally:
            worker.close()
            holder.server.close()


def _raise_spawn():
    raise OSError("fork refused for the test")


class TestHeartbeat:
    def test_silent_worker_is_killed_after_miss_budget(self, engine, system):
        A, x, golden, prepared = system
        worker = make_worker(engine, prepared)
        holder = Holder("sup-test", worker)
        sup = ShardSupervisor(SupervisorConfig(
            miss_budget=2,
            restart_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
        ))
        try:
            assert worker.inject_hang()
            ticks = 0
            # Pace the ticks: a genuinely responsive worker needs a
            # moment between ping and pump to answer, a hung one never
            # does -- the budget must single it out.
            while sup.n_hang_kills == 0 and ticks < 10:
                sup.tick([holder])
                time.sleep(0.02)
                ticks += 1
            assert sup.n_hang_kills == 1
            assert any(d["action"] == "hang_kill" for d in sup.decisions)
            # Healing follows (same tick or the next one).
            sup.tick([holder])
            assert worker.alive
            assert sup.n_restarts == 1
            assert np.array_equal(worker.multiply(A, x).y, golden)
        finally:
            worker.close()

    def test_responsive_worker_is_never_killed(self, engine, system):
        A, x, _, prepared = system
        worker = make_worker(engine, prepared)
        holder = Holder("sup-test", worker)
        sup = ShardSupervisor(SupervisorConfig(miss_budget=1))
        try:
            for _ in range(6):
                sup.tick([holder])
                time.sleep(0.02)
                worker.pump_replies()
            assert worker.alive
            assert sup.n_hang_kills == 0
        finally:
            worker.close()


class TestOrphanReaping:
    def _orphan_name(self):
        # A genuinely dead pid: fork a child and let it exit.
        proc = multiprocessing.get_context("fork").Process(target=int)
        proc.start()
        proc.join()
        return f"reproshm-{proc.pid}-deadbeef"

    def test_reap_orphans_reclaims_dead_pid_segments(self):
        name = self._orphan_name()
        path = f"/dev/shm/{name}"
        with open(path, "wb") as fh:
            fh.write(b"\x00" * 64)
        try:
            reaped = reap_orphans()
            assert name in reaped
            assert not os.path.exists(path)
        finally:
            if os.path.exists(path):
                os.unlink(path)

    def test_live_and_foreign_segments_survive(self):
        own = f"reproshm-{os.getpid()}-cafecafe"
        foreign = "not-a-repro-segment"
        for fname in (own, foreign):
            with open(f"/dev/shm/{fname}", "wb") as fh:
                fh.write(b"\x00")
        try:
            reaped = reap_orphans()
            assert own not in reaped and foreign not in reaped
            assert os.path.exists(f"/dev/shm/{own}")
            assert os.path.exists(f"/dev/shm/{foreign}")
        finally:
            for fname in (own, foreign):
                os.unlink(f"/dev/shm/{fname}")

    def test_supervisor_reaps_on_restart(self, engine, system):
        _, _, _, prepared = system
        name = self._orphan_name()
        with open(f"/dev/shm/{name}", "wb") as fh:
            fh.write(b"\x00" * 64)
        worker = make_worker(engine, prepared)
        holder = Holder("sup-test", worker)
        sup = ShardSupervisor(SupervisorConfig(
            restart_policy=RetryPolicy(max_attempts=3, base_delay_s=0.0)
        ))
        try:
            worker.kill_process()
            sup.tick([holder])
            assert worker.alive
            assert sup.n_reaped >= 1
            assert not os.path.exists(f"/dev/shm/{name}")
            reap = [d for d in sup.decisions if d["action"] == "reap"]
            assert reap and name in reap[0]["segments"]
        finally:
            worker.close()
            if os.path.exists(f"/dev/shm/{name}"):
                os.unlink(f"/dev/shm/{name}")


class TestAutoscalePolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_shards": 0},
            {"min_shards": 3, "max_shards": 2},
            {"high_load": 0.0},
            {"low_load": -1.0},
            {"up_after": 0},
            {"down_after": 0},
            {"cooldown_rounds": -1},
        ],
    )
    def test_rejects_bad_policy(self, kwargs):
        with pytest.raises(ValidationError):
            AutoscalePolicy(**kwargs)


class TestAutoscaler:
    def test_scales_up_under_sustained_pressure(self):
        scaler = Autoscaler(AutoscalePolicy(
            min_shards=1, max_shards=4, high_load=2.0, up_after=2,
        ))
        assert scaler.observe(queued=8, in_flight=0, live=2) is None
        assert scaler.observe(queued=8, in_flight=0, live=2) == "up"
        assert scaler.n_scale_ups == 1

    def test_single_pressured_round_is_not_enough(self):
        scaler = Autoscaler(AutoscalePolicy(high_load=2.0, up_after=2))
        assert scaler.observe(queued=8, in_flight=0, live=2) is None
        assert scaler.observe(queued=0, in_flight=0, live=2) is None
        assert scaler.observe(queued=8, in_flight=0, live=2) is None
        assert scaler.n_scale_ups == 0

    def test_p99_latency_triggers_pressure(self):
        scaler = Autoscaler(AutoscalePolicy(
            high_load=100.0, p99_high_s=0.5, up_after=1,
        ))
        assert scaler.observe(
            queued=2, in_flight=0, live=2, p99_s=0.9
        ) == "up"
        assert "p99" in scaler.decisions[-1]["reason"]

    def test_scales_down_after_idle_streak_with_cooldown(self):
        scaler = Autoscaler(AutoscalePolicy(
            min_shards=1, max_shards=4, high_load=2.0, low_load=0.0,
            up_after=1, down_after=2, cooldown_rounds=1,
        ))
        assert scaler.observe(queued=9, in_flight=0, live=2) == "up"
        # Cooldown round: idle, but only observing.
        assert scaler.observe(queued=0, in_flight=0, live=3) is None
        assert scaler.decisions[-1]["reason"] == "cooldown"
        assert scaler.observe(queued=0, in_flight=0, live=3) is None
        assert scaler.observe(queued=0, in_flight=0, live=3) == "down"
        assert scaler.n_scale_downs == 1

    def test_respects_min_and_max_bounds(self):
        scaler = Autoscaler(AutoscalePolicy(
            min_shards=2, max_shards=2, high_load=1.0, low_load=10.0,
            up_after=1, down_after=1, cooldown_rounds=0,
        ))
        assert scaler.observe(queued=50, in_flight=0, live=2) is None
        assert scaler.observe(queued=0, in_flight=0, live=2) is None
        assert scaler.n_scale_ups == 0 and scaler.n_scale_downs == 0

    def test_decision_log_is_complete_and_typed(self):
        scaler = Autoscaler(AutoscalePolicy(up_after=1, high_load=2.0))
        scaler.observe(queued=9, in_flight=1, live=2, open_breakers=1,
                       p99_s=0.25)
        scaler.observe(queued=0, in_flight=0, live=3)
        assert len(scaler.decisions) == 2
        first = scaler.decisions[0]
        assert first["action"] == "up"
        assert first["queued"] == 9 and first["in_flight"] == 1
        assert first["open_breakers"] == 1
        assert first["load_per_replica"] == 5.0
        assert first["p99_s"] == 0.25
        stats = scaler.stats()
        assert stats["rounds"] == 2
        assert stats["scale_ups"] == 1
