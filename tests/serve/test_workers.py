"""Tests for out-of-process shard workers (:mod:`repro.serve.workers`).

A :class:`ProcessShard` is a real forked child behind a duplex pipe:
these tests exercise the full lifecycle -- spawn, shared-memory prime,
bit-identical serving, SIGKILL mid-flight, hung-worker detection,
respawn with cache re-warm (shared and CSR-fallback modes), graceful
close -- against a live operating system, not mocks.

Matrices are prepared once in the module-scoped fixture and primed into
every worker, so children never run the tuning search and the tests
stay fast.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest
from scipy import sparse

from repro import SpMVEngine
from repro.errors import (
    ServerClosedError,
    ServerOverloadedError,
    ShardCrashError,
    ValidationError,
)
from repro.serve import ServeConfig, WorkerConfig
from repro.serve.workers import ProcessShard


@pytest.fixture(scope="module")
def engine():
    return SpMVEngine(device="gtx680", backend="fast")


@pytest.fixture(scope="module")
def system(engine):
    rng = np.random.default_rng(3)
    A = sparse.random(64, 64, density=0.08, random_state=3, format="csr")
    A.data = rng.standard_normal(A.nnz)
    xs = [rng.standard_normal(64) for _ in range(4)]
    golden = [engine.multiply(A, x).y for x in xs]
    prepared = engine.prepare(A)
    return A, xs, golden, prepared


def make_shard(engine, prepared=None, **worker_kwargs):
    worker_kwargs.setdefault("reply_timeout_s", 30.0)
    shard = ProcessShard(
        engine,
        ServeConfig(batch_window_s=0.0),
        name="w-test",
        worker_config=WorkerConfig(**worker_kwargs),
    )
    if prepared is not None:
        shard.prime(prepared)
    return shard


class TestWorkerConfig:
    def test_defaults_valid(self):
        cfg = WorkerConfig()
        assert cfg.max_inflight >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_inflight": 0},
            {"reply_timeout_s": 0.0},
            {"reply_timeout_s": -1.0},
            {"stop_grace_s": -0.1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValidationError):
            WorkerConfig(**kwargs)


class TestRoundTrip:
    def test_bit_identical_to_direct_engine(self, engine, system):
        A, xs, golden, prepared = system
        shard = make_shard(engine, prepared)
        try:
            futures = [shard.submit(A, x) for x in xs]
            shard.drain()
            for f, g in zip(futures, golden):
                assert np.array_equal(f.result(timeout=0).y, g)
        finally:
            shard.close()

    def test_primed_key_serves_from_child_cache(self, engine, system):
        A, xs, golden, prepared = system
        shard = make_shard(engine, prepared)
        try:
            resp = shard.multiply(A, xs[0])
            assert resp.cache_hit, "primed key should be a child cache hit"
            assert np.array_equal(resp.y, golden[0])
            assert shard.stats()["worker"]["needop"] == 0
        finally:
            shard.close()

    def test_prepared_operand_submit(self, engine, system):
        _, xs, golden, prepared = system
        shard = make_shard(engine)
        try:
            resp = shard.multiply(prepared, xs[1])
            assert np.array_equal(resp.y, golden[1])
            # The operand handle is retained for restart re-warming.
            assert shard.stats()["worker"]["primed_keys"] >= 1
        finally:
            shard.close()

    def test_queue_depth_counts_queued_and_sent(self, engine, system):
        A, xs, _, prepared = system
        shard = make_shard(engine, prepared)
        try:
            assert shard.queue_depth() == 0
            shard.submit(A, xs[0])
            shard.submit(A, xs[1])
            assert shard.queue_depth() == 2
            shard.drain()
            assert shard.queue_depth() == 0
        finally:
            shard.close()


class TestAdmission:
    def test_overload_sheds_synchronously(self, engine, system):
        A, xs, _, prepared = system
        shard = ProcessShard(
            engine,
            ServeConfig(batch_window_s=0.0, queue_depth=2),
            name="w-shed",
            worker_config=WorkerConfig(reply_timeout_s=30.0),
        )
        shard.prime(prepared)
        try:
            shard.submit(A, xs[0])
            shard.submit(A, xs[1])
            with pytest.raises(ServerOverloadedError):
                shard.submit(A, xs[2])
            shard.drain()
        finally:
            shard.close()

    def test_closed_shard_refuses(self, engine, system):
        A, xs, _, prepared = system
        shard = make_shard(engine, prepared)
        shard.close()
        with pytest.raises(ServerClosedError):
            shard.submit(A, xs[0])


class TestDeathAndRespawn:
    def test_sigkill_fails_inflight_with_shard_crash(self, engine, system):
        A, xs, _, prepared = system
        shard = make_shard(engine, prepared)
        try:
            futures = [shard.submit(A, x) for x in xs]
            doomed = shard.kill_process()
            assert doomed == len(xs)
            assert not shard.alive
            assert shard.last_exit_code is not None and shard.last_exit_code < 0
            shard.drain()
            for f in futures:
                assert isinstance(
                    f.exception(timeout=0), ShardCrashError
                )
        finally:
            shard.close()

    def test_respawn_rewarns_shared_cache(self, engine, system):
        A, xs, golden, prepared = system
        shard = make_shard(engine, prepared)
        try:
            shard.multiply(A, xs[0])
            old_pid = shard.pid
            shard.kill_process()
            mode = shard.respawn()
            assert mode == "shared"
            assert shard.alive and shard.pid != old_pid
            resp = shard.multiply(A, xs[1])
            assert resp.cache_hit, "respawn should re-warm the primed key"
            assert np.array_equal(resp.y, golden[1])
            worker = shard.stats()["worker"]
            assert worker["spawns"] == 2
            assert worker["deaths"] == 1
        finally:
            shard.close()

    def test_respawn_falls_back_to_csr_when_arena_is_gone(self, engine):
        rng = np.random.default_rng(9)
        A = sparse.random(24, 24, density=0.2, random_state=9, format="csr")
        A.data = rng.standard_normal(A.nnz)
        x = rng.standard_normal(24)
        golden = engine.multiply(A, x).y
        prepared = engine.prepare(A)
        shard = make_shard(engine, prepared, reply_timeout_s=60.0)
        try:
            shard.kill_process()
            # Lose the shared segment between death and respawn: the
            # child's attach fails and the CSR arrays are shipped so it
            # re-prepares deterministically.
            prepared.arena._shm.unlink()
            mode = shard.respawn()
            assert mode == "csr"
            assert shard.stats()["worker"]["csr_reprimes"] == 1
            resp = shard.multiply(A, x)
            assert resp.cache_hit
            assert np.array_equal(resp.y, golden)
        finally:
            shard.close()
            prepared.release_shared()

    def test_hang_is_detected_and_killed(self, engine, system):
        A, xs, golden, prepared = system
        shard = make_shard(engine, prepared, reply_timeout_s=1.0)
        try:
            assert shard.inject_hang()
            future = shard.submit(A, xs[0])
            shard.drain()  # reply timeout -> hung -> SIGKILL
            assert not shard.alive
            assert isinstance(future.exception(timeout=0), ShardCrashError)
            assert shard.stats()["worker"]["hangs"] == 1
            assert shard.respawn() == "shared"
            assert np.array_equal(shard.multiply(A, xs[0]).y, golden[0])
        finally:
            shard.close()

    def test_permanent_kill_closes_shard(self, engine, system):
        A, xs, _, prepared = system
        shard = make_shard(engine, prepared)
        future = shard.submit(A, xs[0])
        doomed = shard.kill(ShardCrashError("fabric kill", shard="w-test"))
        assert doomed == 1
        assert isinstance(future.exception(timeout=0), ShardCrashError)
        with pytest.raises(ServerClosedError):
            shard.submit(A, xs[0])


class TestLifecycle:
    def test_graceful_close_exits_zero(self, engine, system):
        A, xs, golden, prepared = system
        shard = make_shard(engine, prepared)
        future = shard.submit(A, xs[0])
        shard.close(drain=True)
        assert np.array_equal(future.result(timeout=0).y, golden[0])
        assert shard.last_exit_code == 0
        shard.close()  # idempotent

    def test_no_shared_memory_leak(self, engine, system):
        A, xs, _, _ = system
        before = set(glob.glob("/dev/shm/reproshm-*"))
        prepared = engine.prepare(A)
        shard = make_shard(engine, prepared)
        shard.multiply(A, xs[0])
        shard.kill_process()
        shard.respawn()
        shard.multiply(A, xs[1])
        shard.close()
        prepared.release_shared()
        assert set(glob.glob("/dev/shm/reproshm-*")) <= before

    def test_stats_shape_matches_server_contract(self, engine, system):
        A, xs, _, prepared = system
        shard = make_shard(engine, prepared)
        try:
            shard.multiply(A, xs[0])
            shard.ping()
            shard.pump_replies()
            snap = shard.stats()
            for key in ("requests", "responses", "shed", "batches",
                        "batched_requests", "cache", "queued"):
                assert key in snap, key
            worker = snap["worker"]
            assert worker["alive"] is True
            assert worker["pid"] == shard.pid
            assert os.path.exists(f"/proc/{worker['pid']}")
        finally:
            shard.close()
