"""Tests for the kernel-plan and format caches."""

from repro.formats import BCCOOMatrix, BCCOOPlusMatrix
from repro.kernels import YaSpMVConfig
from repro.tuning import FormatCache, KernelPlanCache, TuningPoint


class TestKernelPlanCache:
    def test_miss_then_hit(self):
        cache = KernelPlanCache(compile_cost_s=0.1)
        p = TuningPoint()
        _, hit1 = cache.get(p)
        _, hit2 = cache.get(p)
        assert (hit1, hit2) == (False, True)
        assert cache.misses == 1 and cache.hits == 1

    def test_reuse_across_matrices_by_design(self):
        # The key contains no matrix identity: the same configuration on
        # another matrix reuses the plan (the paper's acceleration #2).
        cache = KernelPlanCache()
        a = TuningPoint(block_height=2)
        b = TuningPoint(block_height=2)
        cache.get(a)
        _, hit = cache.get(b)
        assert hit

    def test_simulated_times(self):
        cache = KernelPlanCache(compile_cost_s=0.2)
        p1, p2 = TuningPoint(), TuningPoint(block_height=2)
        cache.get(p1)
        cache.get(p2)
        cache.get(p1)
        assert cache.simulated_compile_time_s == 0.4
        assert cache.simulated_time_saved_s == 0.2
        assert len(cache) == 2


class TestFormatCache:
    def test_conversion_reused_across_kernel_geometry(self, random_matrix):
        fc = FormatCache(random_matrix())
        a = TuningPoint(kernel=YaSpMVConfig(workgroup_size=64, tile_size=16))
        b = TuningPoint(kernel=YaSpMVConfig(workgroup_size=512, tile_size=16))
        fa = fc.get(a)
        fb = fc.get(b)
        assert fa is fb
        assert fc.conversions == 1

    def test_distinct_blocks_distinct_builds(self, random_matrix):
        fc = FormatCache(random_matrix())
        fc.get(TuningPoint(block_height=1))
        fc.get(TuningPoint(block_height=2))
        assert fc.conversions == 2

    def test_builds_requested_types(self, random_matrix):
        fc = FormatCache(random_matrix(ncols=200))
        plain = fc.get(TuningPoint())
        plus = fc.get(TuningPoint(slice_count=4))
        assert isinstance(plain, BCCOOMatrix)
        assert isinstance(plus, BCCOOPlusMatrix)

    def test_col_compress_flag(self, random_matrix):
        fc = FormatCache(random_matrix(ncols=100))
        raw = fc.get(TuningPoint(col_compress=False))
        assert raw.col_storage == "int32"
