"""Tests for crash-safe tuning checkpoints and deadline-bounded search."""

import json

import pytest

from repro.errors import DeadlineExceeded
from repro.gpu import GTX680
from repro.tuning import AutoTuner, TuningCheckpoint


@pytest.fixture
def A(random_matrix):
    return random_matrix(nrows=60, ncols=60, density=0.08)


@pytest.fixture
def serial(A):
    return AutoTuner(GTX680, mode="pruned").tune(A)


def assert_identical(a, b):
    """Bit-identical tuning results: winner, history, quarantines."""
    assert a.best.point == b.best.point
    assert a.best.time_s == b.best.time_s
    assert a.best.gflops == b.best.gflops
    assert a.history == b.history
    assert a.evaluated == b.evaluated
    assert a.skipped == b.skipped
    assert a.skip_reasons == b.skip_reasons


class TestJournal:
    def test_checkpointed_serial_matches_plain_serial(self, tmp_path, A, serial):
        ck = tmp_path / "ck.jsonl"
        res = AutoTuner(GTX680, checkpoint=ck).tune(A)
        assert_identical(res, serial)
        assert res.resumed == 0
        # The journal holds a header plus one line per outcome.
        lines = ck.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert len(lines) - 1 == res.evaluated + res.skipped

    def test_full_journal_resumes_everything(self, tmp_path, A, serial):
        ck = tmp_path / "ck.jsonl"
        AutoTuner(GTX680, checkpoint=ck).tune(A)
        resumed = AutoTuner(GTX680, checkpoint=ck).tune(A)
        assert_identical(resumed, serial)
        assert resumed.resumed == serial.evaluated + serial.skipped
        assert not resumed.partial

    def test_truncated_journal_resumes_the_rest(self, tmp_path, A, serial):
        ck = tmp_path / "ck.jsonl"
        AutoTuner(GTX680, checkpoint=ck).tune(A)
        lines = ck.read_text().splitlines(keepends=True)
        keep = 1 + (len(lines) - 1) // 3  # header + a third of the outcomes
        ck.write_text("".join(lines[:keep]))
        resumed = AutoTuner(GTX680, checkpoint=ck).tune(A)
        assert resumed.resumed == keep - 1
        assert_identical(resumed, serial)

    def test_torn_trailing_line_is_dropped(self, tmp_path, A, serial):
        ck = tmp_path / "ck.jsonl"
        AutoTuner(GTX680, checkpoint=ck).tune(A)
        text = ck.read_text()
        # Simulate a crash mid-write: cut the last line in half.
        torn = text[: len(text) - 40]
        ck.write_text(torn)
        checkpoint = TuningCheckpoint(ck)
        resumed = AutoTuner(GTX680, checkpoint=checkpoint).tune(A)
        assert checkpoint.torn_lines == 1
        assert_identical(resumed, serial)

    def test_header_mismatch_starts_fresh(self, tmp_path, A, random_matrix, serial):
        ck = tmp_path / "ck.jsonl"
        B = random_matrix(nrows=50, ncols=50, density=0.1, seed=9)
        AutoTuner(GTX680, checkpoint=ck).tune(B)  # journal belongs to B
        res = AutoTuner(GTX680, checkpoint=ck).tune(A)
        assert res.resumed == 0  # nothing restorable for A
        assert_identical(res, serial)

    def test_resume_false_discards_journal(self, tmp_path, A):
        ck = tmp_path / "ck.jsonl"
        AutoTuner(GTX680, checkpoint=ck).tune(A)
        res = AutoTuner(
            GTX680, checkpoint=TuningCheckpoint(ck, resume=False)
        ).tune(A)
        assert res.resumed == 0

    def test_coerce(self, tmp_path):
        ck = TuningCheckpoint(tmp_path / "x.jsonl")
        assert TuningCheckpoint.coerce(ck) is ck
        assert TuningCheckpoint.coerce(None) is None
        assert TuningCheckpoint.coerce(tmp_path / "y.jsonl").resume is True
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            TuningCheckpoint.coerce(42)


class TestDeadline:
    def test_zero_budget_raises_typed_error(self, A):
        with pytest.raises(DeadlineExceeded):
            AutoTuner(GTX680, deadline=0.0).tune(A)

    def test_expiry_mid_tune_returns_partial_best_so_far(self, tmp_path, A, serial):
        # A budget big enough for some candidates but (virtually) never
        # the whole space on this matrix size.
        ck = tmp_path / "ck.jsonl"
        res = None
        for budget in (0.25, 0.5, 1.0, 2.0):
            try:
                res = AutoTuner(GTX680, checkpoint=ck, deadline=budget).tune(A)
                break
            except DeadlineExceeded:
                continue  # not even one candidate fit; widen and resume
        assert res is not None, "no budget admitted a single candidate"
        assert res.best is not None  # best-so-far even when partial
        total = serial.evaluated + serial.skipped
        done = res.evaluated + res.skipped + res.resumed
        if res.partial:
            assert done < total
            # The best-so-far is the serial best over the same prefix:
            # every evaluated time is in serial's history.
            serial_times = {e.time_s for e in serial.history}
            assert {e.time_s for e in res.history} <= serial_times
        else:
            assert done == total

    def test_partial_then_resume_is_bit_identical(self, tmp_path, A, serial):
        ck = tmp_path / "ck.jsonl"
        first = None
        for budget in (0.25, 0.5, 1.0, 2.0):
            try:
                first = AutoTuner(GTX680, checkpoint=ck, deadline=budget).tune(A)
                break
            except DeadlineExceeded:
                continue
        assert first is not None
        total = serial.evaluated + serial.skipped
        if first.partial:
            # Best-so-far over the completed prefix, persisted in the
            # journal; an unlimited resume completes the search.
            done = first.evaluated + first.skipped + first.resumed
            assert done < total
            resumed = AutoTuner(GTX680, checkpoint=ck).tune(A)
            assert resumed.resumed == done
            assert not resumed.partial
            assert_identical(resumed, serial)
        else:
            # The machine was fast enough to finish inside the budget --
            # then the run must simply equal serial.
            assert_identical(first, serial)

    def test_summary_mentions_partial(self, A):
        res = None
        for budget in (0.25, 0.5, 1.0):
            try:
                res = AutoTuner(GTX680, deadline=budget).tune(A)
                break
            except DeadlineExceeded:
                continue
        if res is not None and res.partial:
            assert "PARTIAL" in res.summary()
            assert res.to_dict()["partial"] is True
