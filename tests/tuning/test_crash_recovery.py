"""Worker-crash recovery in parallel tuning: requeue, rebuild, fall back."""

import os

import pytest

from repro.errors import WorkerCrashError
from repro.fault import FaultPlan, RetryPolicy
from repro.fault.injection import fault_scope
from repro.gpu import GTX680
from repro.tuning import (
    AutoTuner,
    FormatCache,
    KernelPlanCache,
    ParallelReport,
    run_parallel,
)
from repro.tuning.parallel import evaluate_candidates
from repro.tuning.space import pruned_space


@pytest.fixture
def A(random_matrix):
    return random_matrix(nrows=60, ncols=60, density=0.08)


@pytest.fixture
def serial(A):
    return AutoTuner(GTX680, mode="pruned").tune(A)


def assert_identical(a, b):
    assert a.best.point == b.best.point
    assert a.best.time_s == b.best.time_s
    assert a.history == b.history
    assert a.evaluated == b.evaluated
    assert a.skipped == b.skipped
    assert a.skip_reasons == b.skip_reasons


class TestCrashInjection:
    def test_crash_after_kills_in_process_evaluation(self, A):
        items = list(enumerate(pruned_space(A, GTX680)))[:8]
        import numpy as np

        x = np.ones(A.shape[1])
        with pytest.raises(WorkerCrashError):
            evaluate_candidates(
                items,
                A,
                x,
                GTX680,
                FormatCache(A),
                KernelPlanCache(),
                crash_after=2,
                parent_pid=os.getpid(),  # in-process: must raise, not exit
            )

    def test_thread_pool_recovers_bit_identically(self, A, serial):
        plan = FaultPlan.parse("tuner.worker_crash:p=1.0,count=1,seed=3")
        with fault_scope(plan):
            res = AutoTuner(
                GTX680, workers=2, executor="thread"
            ).tune(A)
        assert_identical(res, serial)
        events = plan.drain_events()
        assert any(e.site == "tuner.worker_crash" for e in events)

    def test_process_pool_recovers_bit_identically(self, A, serial):
        # The process worker dies with os._exit -> BrokenProcessPool in
        # the parent; the chunk is requeued onto a rebuilt pool.
        plan = FaultPlan.parse("tuner.worker_crash:p=1.0,count=1,seed=3")
        with fault_scope(plan):
            res = AutoTuner(
                GTX680, workers=2, executor="process"
            ).tune(A)
        assert_identical(res, serial)

    def test_report_counts_lost_chunks_and_rebuilds(self, A):
        import numpy as np

        items = list(enumerate(pruned_space(A, GTX680)))
        x = np.ones(A.shape[1])
        report = ParallelReport()
        plan = FaultPlan.parse("tuner.worker_crash:p=1.0,count=1,seed=3")
        with fault_scope(plan):
            outcomes = run_parallel(
                items,
                A,
                x,
                GTX680,
                workers=2,
                executor="thread",
                compile_cost=0.0,
                report=report,
            )
        assert report.lost_chunks >= 1
        assert report.pool_rebuilds >= 1
        assert report.serial_fallback_chunks == 0
        assert [o.index for o in outcomes] == sorted(o.index for o in outcomes)

    def test_persistent_crasher_falls_back_to_serial(self, A, serial):
        # Unlimited crash budget on a thread pool: every pooled attempt
        # of every chunk dies, so after the rebuild budget the chunks
        # are evaluated serially in-process (injection disabled there --
        # the parent must survive) and the result still matches serial.
        import numpy as np

        items = list(enumerate(pruned_space(A, GTX680)))
        x = np.ones(A.shape[1])
        report = ParallelReport()
        plan = FaultPlan.parse("tuner.worker_crash:p=1.0,count=inf,seed=3")
        with fault_scope(plan):
            outcomes = run_parallel(
                items,
                A,
                x,
                GTX680,
                workers=2,
                executor="thread",
                compile_cost=0.0,
                retry=RetryPolicy(max_attempts=2, base_delay_s=0.0),
                report=report,
            )
        assert report.serial_fallback_chunks > 0
        assert len(outcomes) == len(
            [o for o in outcomes if o is not None]
        )
        # All candidates accounted for despite every pooled attempt dying.
        assert len({o.index for o in outcomes}) == len(items)

    def test_tuner_emits_crash_metrics(self, A):
        from repro.obs import Observer

        obs = Observer()
        plan = FaultPlan.parse("tuner.worker_crash:p=1.0,count=1,seed=3")
        with fault_scope(plan):
            AutoTuner(
                GTX680, workers=2, executor="thread", observer=obs
            ).tune(A)
        assert obs.metrics.get("tuner.worker_crashes").value() >= 1
        assert obs.metrics.get("retry.attempts").value() >= 1


class TestNewFaultSites:
    def test_parse_worker_crash_spec(self):
        plan = FaultPlan.parse("tuner.worker_crash:p=1.0,count=1,seed=3")
        assert "tuner.worker_crash" in plan.specs

    def test_parse_store_corruption_spec(self):
        plan = FaultPlan.parse("store.corruption:p=0.5,count=inf,seed=7")
        assert "store.corruption" in plan.specs

    def test_short_names_resolve(self):
        plan = FaultPlan.parse("worker_crash:p=1.0;corruption:p=1.0")
        assert set(plan.specs) == {"tuner.worker_crash", "store.corruption"}

    def test_worker_crash_draw_is_parent_side_and_budgeted(self):
        plan = FaultPlan.parse("tuner.worker_crash:p=1.0,count=1,seed=3")
        plan.reset()
        first = plan.worker_crash(10)
        assert first is not None and 1 <= first <= 10
        # Budget spent: the requeued chunk must not crash again.
        assert plan.worker_crash(10) is None

    def test_worker_crash_quiet_without_plan(self):
        plan = FaultPlan.parse("tuner.worker_crash:p=0.0")
        plan.reset()
        assert plan.worker_crash(10) is None

    def test_corrupt_store_text_garbles(self):
        plan = FaultPlan.parse("store.corruption:p=1.0,count=1,seed=5")
        plan.reset()
        text = '{"schema": 2, "entries": {}}'
        garbled = plan.corrupt_store_text(text)
        assert garbled is not None and garbled != text
        import json

        with pytest.raises(json.JSONDecodeError):
            json.loads(garbled)
        # Budget spent.
        assert plan.corrupt_store_text(text) is None
