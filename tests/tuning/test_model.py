"""Tests for the model-driven tuner extension."""

import numpy as np
import pytest

from repro.errors import TuningError
from repro.gpu import GTX680
from repro.tuning import (
    AutoTuner,
    CostModel,
    MatrixSummary,
    ModelDrivenTuner,
    TuningPoint,
)


@pytest.fixture
def matrix(random_matrix):
    return random_matrix(nrows=150, ncols=150, density=0.05)


class TestCostModel:
    def test_predicts_positive_time(self, matrix):
        summary = MatrixSummary.measure(matrix, [(1, 1), (2, 2)])
        model = CostModel(GTX680)
        t = model.predict(TuningPoint(), summary)
        assert t > 0

    def test_bigger_blocks_cost_fill_in(self, matrix):
        # On a scattered matrix, 2x2 blocks store ~4x the values: the
        # model must rank 1x1 faster.
        summary = MatrixSummary.measure(matrix, [(1, 1), (2, 2)])
        model = CostModel(GTX680)
        t11 = model.predict(TuningPoint(block_height=1, block_width=1), summary)
        t22 = model.predict(TuningPoint(block_height=2, block_width=2), summary)
        assert t11 < t22

    def test_fp64_costs_more(self, matrix):
        summary = MatrixSummary.measure(matrix, [(1, 1)])
        model = CostModel(GTX680)
        p32 = TuningPoint()
        p64 = p32.with_kernel(precision="fp64")
        assert model.predict(p64, summary) > model.predict(p32, summary)

    def test_missing_dimension_rejected(self, matrix):
        summary = MatrixSummary.measure(matrix, [(1, 1)])
        with pytest.raises(TuningError, match="lacks block counts"):
            CostModel(GTX680).predict(TuningPoint(block_height=2), summary)


class TestModelDrivenTuner:
    def test_finds_near_optimal_with_fraction_of_work(self, matrix):
        full = AutoTuner(GTX680).tune(matrix)
        fast = ModelDrivenTuner(GTX680, evaluate_fraction=0.2).tune(matrix)
        # Far fewer kernel executions...
        assert fast.evaluated < full.evaluated / 2
        # ...and a winner within 15% of the full pruned search.
        assert fast.best.time_s <= full.best.time_s * 1.15

    def test_best_point_runnable(self, matrix, rng):
        from repro.core import SpMVEngine

        res = ModelDrivenTuner(GTX680).tune(matrix)
        eng = SpMVEngine(GTX680)
        prep = eng.prepare(matrix, point=res.best_point)
        x = rng.standard_normal(matrix.shape[1])
        np.testing.assert_allclose(eng.multiply(prep, x).y, matrix @ x, atol=1e-9)

    def test_fraction_validation(self):
        with pytest.raises(TuningError, match="evaluate_fraction"):
            ModelDrivenTuner(GTX680, evaluate_fraction=0.0)

    def test_min_evaluations_floor(self, matrix):
        res = ModelDrivenTuner(
            GTX680, evaluate_fraction=0.001, min_evaluations=10
        ).tune(matrix)
        assert res.evaluated + res.skipped >= 10
