"""Tuner integration for the widened (merge-path CSR + RG-CSR) space.

Three contracts:

* The pruned space *enumerates* the new formats -- one candidate per
  (format, workgroup size) next to the BCCOO/BCCOO+ sub-space.
* The search stays **bit-identical** across serial, thread-pool and
  process-pool executors and across a checkpoint/resume cycle with the
  new candidates in play (``base_format`` must survive the worker
  payload and the journal byte-for-byte).
* Each new format actually *wins* a structural family end-to-end: the
  far-diagonal band goes to merge-path CSR (equal-work teams, no
  blocking to exploit), the uniform dense-row family goes to RG-CSR
  (short columns, lane-major gather).  A cost-model change that takes
  either win away fails here, not in production.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gpu import GTX480, GTX680
from repro.tuning import (
    AutoTuner,
    KernelPlanCache,
    TuningCheckpoint,
    base_format_points,
    pruned_space,
)

#: Trimmed axes for time-boxed runs -- the widened space stays in play
#: (base-format candidates are enumerated regardless of the BCCOO axes).
PRUNED = dict(keep_block_dims=2, workgroup_sizes=(128, 256), bit_words=("uint32",))


@pytest.fixture(scope="module")
def fardiag():
    """Far-apart diagonals: every gather misses cache, rows are uniform
    but unblockable -- the merge-path CSR home turf."""
    nr, nd = 2000, 96
    gaps = 65601 + np.arange(nd) * 1664
    offs = np.concatenate([[0], np.cumsum(gaps[:-1])])
    nc = int(offs[-1]) + nr
    cols = np.arange(nr)[:, None] + offs[None, :]
    rows = np.repeat(np.arange(nr), nd)
    return sp.coo_matrix(
        (np.ones(nr * nd), (rows, cols.ravel())), shape=(nr, nc)
    ).tocsr()


@pytest.fixture(scope="module")
def dense_rows():
    """Thousands of identical mid-length strided rows over a narrow
    column space -- the RG-CSR home turf."""
    nr, nc, rl = 12000, 3000, 48
    cols = np.sort(
        (np.arange(nr)[:, None] * 7 + np.arange(rl)[None, :] * 61) % nc,
        axis=1,
    )
    rows = np.repeat(np.arange(nr), rl)
    vals = np.random.default_rng(0).standard_normal(nr * rl)
    return sp.coo_matrix(
        (vals, (rows, cols.ravel())), shape=(nr, nc)
    ).tocsr()


def _assert_identical(a, b):
    assert a.best.point == b.best.point
    assert a.best.time_s == b.best.time_s
    assert [(e.point, e.time_s, e.gflops) for e in a.history] == [
        (e.point, e.time_s, e.gflops) for e in b.history
    ]
    assert a.evaluated == b.evaluated
    assert a.skipped == b.skipped
    assert a.skip_reasons == b.skip_reasons


class TestSpaceEnumeration:
    def test_pruned_space_contains_new_formats(self, random_matrix):
        A = random_matrix(nrows=60, ncols=60, density=0.08)
        formats = {p.base_format for p in pruned_space(A, GTX680)}
        assert {"bccoo", "merge_csr", "rgcsr"} <= formats

    def test_one_point_per_format_and_geometry(self):
        pts = list(base_format_points((64, 128, 256)))
        assert len(pts) == 6
        assert {(p.base_format, p.kernel.workgroup_size) for p in pts} == {
            (f, wg)
            for f in ("merge_csr", "rgcsr")
            for wg in (64, 128, 256)
        }

    def test_unpruned_adds_texture_toggle(self):
        pts = list(base_format_points((128,), pruned=False))
        assert len(pts) == 4
        assert {p.kernel.use_texture for p in pts} == {True, False}


class TestFormatWins:
    def test_merge_csr_wins_far_diagonals(self, fardiag):
        res = AutoTuner(GTX480, mode="pruned", pruned_kwargs=PRUNED).tune(fardiag)
        assert res.best.point.base_format == "merge_csr"
        # The win is over a real contest, not a walkover: BCCOO was
        # evaluated and ranked.
        contested = {e.point.base_format for e in res.history}
        assert "bccoo" in contested

    def test_rgcsr_wins_uniform_dense_rows(self, dense_rows):
        res = AutoTuner(GTX480, mode="pruned", pruned_kwargs=PRUNED).tune(dense_rows)
        assert res.best.point.base_format == "rgcsr"
        contested = {e.point.base_format for e in res.history}
        assert "bccoo" in contested


class TestExecutorIdentity:
    @pytest.fixture(scope="class")
    def A(self):
        rng = np.random.default_rng(31)
        return sp.random(200, 200, density=0.05, random_state=rng,
                         format="csr")

    @pytest.fixture(scope="class")
    def serial(self, A):
        return AutoTuner(GTX680, plan_cache=KernelPlanCache()).tune(A)

    def test_serial_covers_new_formats(self, serial):
        # Guard against a vacuous identity: the widened candidates must
        # actually be in the compared history.
        formats = {e.point.base_format for e in serial.history}
        assert {"merge_csr", "rgcsr"} <= formats

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pool_identical_to_serial(self, A, serial, executor):
        parallel = AutoTuner(
            GTX680, plan_cache=KernelPlanCache(), workers=3,
            executor=executor,
        ).tune(A)
        _assert_identical(serial, parallel)


class TestCheckpointResume:
    def test_resume_replays_widened_space(self, tmp_path, random_matrix):
        A = random_matrix(nrows=60, ncols=60, density=0.08)
        ck = tmp_path / "tuning.journal"
        first = AutoTuner(GTX680, checkpoint=ck).tune(A)
        resumed = AutoTuner(GTX680, checkpoint=TuningCheckpoint(ck)).tune(A)
        _assert_identical(first, resumed)
        assert resumed.resumed == first.evaluated + first.skipped
        assert not resumed.partial
        # base_format survives the journal: resumed history still names
        # the widened candidates.
        formats = {e.point.base_format for e in resumed.history}
        assert {"merge_csr", "rgcsr"} <= formats
