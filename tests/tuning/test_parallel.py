"""Tests for the parallel tuning service.

The contract under test: ``AutoTuner(workers=N)`` is bit-identical to
the serial walk -- same best point, same evaluation set in the same
order, same skip-reason quarantine counters, and the shared plan cache
ends up in the same state (entries *and* hit/miss counters).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import TuningError
from repro.gpu import GTX680
from repro.tuning import (
    AutoTuner,
    KernelPlanCache,
    TuningPoint,
    chunk_candidates,
    pruned_space,
)


@pytest.fixture(scope="module")
def A():
    rng = np.random.default_rng(11)
    return sp.random(200, 200, density=0.05, random_state=rng, format="csr")


def _tune(A, **kw):
    cache = KernelPlanCache()
    result = AutoTuner(GTX680, plan_cache=cache, **kw).tune(A)
    return result, cache


def _assert_identical(serial, parallel, serial_cache, parallel_cache):
    assert parallel.best_point == serial.best_point
    assert parallel.evaluated == serial.evaluated
    assert parallel.skipped == serial.skipped
    assert parallel.skip_reasons == serial.skip_reasons
    assert [(e.point, e.time_s, e.gflops) for e in parallel.history] == [
        (e.point, e.time_s, e.gflops) for e in serial.history
    ]
    assert parallel_cache.hits == serial_cache.hits
    assert parallel_cache.misses == serial_cache.misses
    assert parallel.cache_hits == serial.cache_hits
    assert parallel.cache_misses == serial.cache_misses


class TestChunking:
    def test_groups_by_format_affinity(self, A):
        items = list(enumerate(pruned_space(A, GTX680)))
        chunks = chunk_candidates(items)
        keys = [
            {
                (p.base_format, p.block_height, p.block_width, p.bit_word)
                for _, p in chunk
            }
            for chunk in chunks
        ]
        # One format-affinity key per chunk, no key in two chunks.
        assert all(len(k) == 1 for k in keys)
        flat = [next(iter(k)) for k in keys]
        assert len(flat) == len(set(flat))

    def test_preserves_enumeration_order(self, A):
        items = list(enumerate(pruned_space(A, GTX680)))
        chunks = chunk_candidates(items)
        for chunk in chunks:
            indices = [i for i, _ in chunk]
            assert indices == sorted(indices)
        assert sorted(i for c in chunks for i, _ in c) == [
            i for i, _ in items
        ]

    def test_empty(self):
        assert chunk_candidates([]) == []


class TestEquivalence:
    def test_process_pool_identical(self, A):
        serial, serial_cache = _tune(A)
        parallel, parallel_cache = _tune(A, workers=4)
        _assert_identical(serial, parallel, serial_cache, parallel_cache)
        assert serial.workers == 1
        assert parallel.workers == 4

    def test_thread_pool_identical(self, A):
        serial, serial_cache = _tune(A)
        parallel, parallel_cache = _tune(A, workers=3, executor="thread")
        _assert_identical(serial, parallel, serial_cache, parallel_cache)

    def test_more_workers_than_chunks(self, A):
        serial, serial_cache = _tune(A)
        parallel, parallel_cache = _tune(A, workers=64, executor="thread")
        _assert_identical(serial, parallel, serial_cache, parallel_cache)

    def test_exhaustive_mode_identical(self, A):
        kw = dict(
            mode="exhaustive",
            exhaustive_kwargs=dict(
                block_heights=(1, 2), block_widths=(1,), bit_words=("uint32",)
            ),
        )
        serial, serial_cache = _tune(A, **kw)
        parallel, parallel_cache = _tune(A, workers=2, executor="thread", **kw)
        _assert_identical(serial, parallel, serial_cache, parallel_cache)

    def test_quarantine_counters_survive_fanout(self):
        # A tall skinny matrix trips per-candidate errors for some
        # configurations; those must be quarantined identically.
        rng = np.random.default_rng(3)
        A = sp.random(400, 9, density=0.3, random_state=rng, format="csr")
        serial, _ = _tune(A)
        parallel, _ = _tune(A, workers=4, executor="thread")
        assert serial.skip_reasons == parallel.skip_reasons
        assert serial.best_point == parallel.best_point


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(TuningError, match="workers"):
            AutoTuner(GTX680, workers=0)

    def test_unknown_executor_rejected(self):
        with pytest.raises(TuningError, match="executor"):
            AutoTuner(GTX680, executor="rayon")

    def test_result_reports_store_defaults(self, A):
        result, _ = _tune(A)
        assert result.store_checked is False
        assert result.store_hit is False
        assert result.store_invalidations == 0
        assert result.point is None
        assert result.best_point == result.best.point


class TestStoreResult:
    def test_from_store_round_trip(self):
        from repro.tuning.tuner import TuningResult

        point = TuningPoint(block_height=2)
        res = TuningResult.from_store(point, invalidations=1)
        assert res.best is None
        assert res.evaluated == 0
        assert res.store_hit and res.store_checked
        assert res.store_invalidations == 1
        assert res.best_point == point

    def test_empty_result_has_no_point(self):
        from repro.tuning.tuner import TuningResult

        with pytest.raises(TuningError, match="neither"):
            TuningResult().best_point
