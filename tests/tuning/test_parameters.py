"""Tests for tuning points and keys."""

import numpy as np
import pytest

from repro.errors import TuningError
from repro.kernels import YaSpMVConfig
from repro.tuning import TuningPoint


class TestValidation:
    def test_defaults_valid(self):
        p = TuningPoint()
        assert p.format_name == "bccoo"

    def test_bad_block(self):
        with pytest.raises(TuningError):
            TuningPoint(block_height=5)
        with pytest.raises(TuningError):
            TuningPoint(block_width=3)

    def test_bad_word(self):
        with pytest.raises(TuningError):
            TuningPoint(bit_word="uint64")

    def test_bad_slices(self):
        with pytest.raises(TuningError):
            TuningPoint(slice_count=3)

    def test_plus_name(self):
        assert TuningPoint(slice_count=4).format_name == "bccoo+"


class TestKeys:
    def test_plan_key_hashable_and_stable(self):
        a = TuningPoint(block_height=2, kernel=YaSpMVConfig(workgroup_size=128))
        b = TuningPoint(block_height=2, kernel=YaSpMVConfig(workgroup_size=128))
        assert a.plan_key() == b.plan_key()
        assert hash(a.plan_key()) == hash(b.plan_key())

    def test_plan_key_distinguishes_kernel_config(self):
        a = TuningPoint(kernel=YaSpMVConfig(strategy=1, reg_size=8))
        b = TuningPoint(kernel=YaSpMVConfig(strategy=2, tile_size=8))
        assert a.plan_key() != b.plan_key()

    def test_format_key_ignores_kernel_geometry(self):
        # Same format build, different workgroup size: one conversion.
        a = TuningPoint(kernel=YaSpMVConfig(workgroup_size=64, tile_size=16))
        b = TuningPoint(kernel=YaSpMVConfig(workgroup_size=512, tile_size=16))
        assert a.format_key() == b.format_key()

    def test_format_key_tracks_delta_tile(self):
        # Delta compression segments by the tile size -> different build.
        a = TuningPoint(kernel=YaSpMVConfig(tile_size=8))
        b = TuningPoint(kernel=YaSpMVConfig(tile_size=16))
        assert a.format_key() != b.format_key()

    def test_bit_word_dtype(self):
        assert TuningPoint(bit_word="uint16").bit_word_dtype == np.dtype(np.uint16)

    def test_with_kernel(self):
        p = TuningPoint().with_kernel(workgroup_size=512)
        assert p.kernel.workgroup_size == 512
        assert p.block_height == 1
