"""Tests for tuned-configuration persistence."""

import json

import numpy as np
import pytest
from scipy import sparse

from repro.gpu import GTX480, GTX680
from repro.kernels import YaSpMVConfig
from repro.tuning import TuningPoint, TuningStore, matrix_fingerprint


@pytest.fixture
def store(tmp_path):
    return TuningStore(tmp_path / "tuning.json")


@pytest.fixture
def A(random_matrix):
    return random_matrix(nrows=80, ncols=80, density=0.1)


class TestFingerprint:
    def test_structure_only(self, A):
        B = A.copy()
        B.data = B.data * 3.0  # same structure, different values
        assert matrix_fingerprint(A) == matrix_fingerprint(B)

    def test_different_pattern_differs(self, random_matrix):
        a = random_matrix(seed=1)
        b = random_matrix(seed=2)
        assert matrix_fingerprint(a) != matrix_fingerprint(b)

    def test_shape_included(self):
        a = sparse.identity(10, format="csr")
        b = sparse.identity(11, format="csr")[:10]
        assert matrix_fingerprint(a) != matrix_fingerprint(b)


class TestStore:
    def test_round_trip(self, store, A):
        point = TuningPoint(
            block_height=2,
            bit_word="uint16",
            kernel=YaSpMVConfig(strategy=1, reg_size=8, workgroup_size=128),
        )
        store.put(A, GTX680, point)
        loaded = TuningStore(store.path).get(A, GTX680)  # fresh reader
        assert loaded == point

    def test_miss_returns_none(self, store, A):
        assert store.get(A, GTX680) is None

    def test_device_keyed(self, store, A):
        store.put(A, GTX680, TuningPoint(block_height=2))
        assert store.get(A, GTX480) is None
        assert store.get(A, "gtx680") is not None  # name and spec agree

    def test_overwrite(self, store, A):
        store.put(A, GTX680, TuningPoint(block_height=1))
        store.put(A, GTX680, TuningPoint(block_height=3))
        assert store.get(A, GTX680).block_height == 3
        assert len(store) == 1

    def test_corrupt_file_is_empty_store(self, tmp_path, A):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert TuningStore(path).get(A, GTX680) is None

    def test_incompatible_version_is_miss(self, store, A):
        store.put(A, GTX680, TuningPoint())
        blobs = json.loads(store.path.read_text())
        for v in blobs.values():
            v["version"] = 999
        store.path.write_text(json.dumps(blobs))
        assert TuningStore(store.path).get(A, GTX680) is None


class TestEngineIntegration:
    def test_store_skips_second_search(self, store, A, rng):
        from repro import SpMVEngine

        eng = SpMVEngine("gtx680")
        first = eng.prepare(A, store=store)
        assert first.tuning is not None  # searched
        assert len(store) == 1

        second = eng.prepare(A, store=store)
        assert second.tuning is None  # served from the store
        assert second.point == first.point

        x = rng.standard_normal(80)
        np.testing.assert_allclose(eng.multiply(second, x).y, A @ x, atol=1e-9)
