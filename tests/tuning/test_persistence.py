"""Tests for tuned-configuration persistence."""

import json

import numpy as np
import pytest
from scipy import sparse

from repro.gpu import GTX480, GTX680
from repro.kernels import YaSpMVConfig
from repro.tuning import TuningPoint, TuningStore, matrix_fingerprint


@pytest.fixture
def store(tmp_path):
    return TuningStore(tmp_path / "tuning.json")


@pytest.fixture
def A(random_matrix):
    return random_matrix(nrows=80, ncols=80, density=0.1)


class TestFingerprint:
    def test_structure_only(self, A):
        B = A.copy()
        B.data = B.data * 3.0  # same structure, different values
        assert matrix_fingerprint(A) == matrix_fingerprint(B)

    def test_different_pattern_differs(self, random_matrix):
        a = random_matrix(seed=1)
        b = random_matrix(seed=2)
        assert matrix_fingerprint(a) != matrix_fingerprint(b)

    def test_shape_included(self):
        a = sparse.identity(10, format="csr")
        b = sparse.identity(11, format="csr")[:10]
        assert matrix_fingerprint(a) != matrix_fingerprint(b)


class TestStore:
    def test_round_trip(self, store, A):
        point = TuningPoint(
            block_height=2,
            bit_word="uint16",
            kernel=YaSpMVConfig(strategy=1, reg_size=8, workgroup_size=128),
        )
        store.put(A, GTX680, point)
        loaded = TuningStore(store.path).get(A, GTX680)  # fresh reader
        assert loaded == point

    def test_miss_returns_none(self, store, A):
        assert store.get(A, GTX680) is None

    def test_device_keyed(self, store, A):
        store.put(A, GTX680, TuningPoint(block_height=2))
        assert store.get(A, GTX480) is None
        assert store.get(A, "gtx680") is not None  # name and spec agree

    def test_overwrite(self, store, A):
        store.put(A, GTX680, TuningPoint(block_height=1))
        store.put(A, GTX680, TuningPoint(block_height=3))
        assert store.get(A, GTX680).block_height == 3
        assert len(store) == 1

    def test_corrupt_file_is_empty_store(self, tmp_path, A):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert TuningStore(path).get(A, GTX680) is None

    def test_incompatible_version_is_miss(self, store, A):
        store.put(A, GTX680, TuningPoint())
        blobs = json.loads(store.path.read_text())
        for v in blobs["entries"].values():
            v["version"] = 999
        store.path.write_text(json.dumps(blobs))
        assert TuningStore(store.path).get(A, GTX680) is None


class TestCounters:
    def test_miss_then_hit(self, store, A):
        assert store.get(A, GTX680) is None
        assert (store.hits, store.misses, store.invalidations) == (0, 1, 0)
        store.put(A, GTX680, TuningPoint())
        assert store.get(A, GTX680) is not None
        assert (store.hits, store.misses, store.invalidations) == (1, 1, 0)

    def test_version_mismatch_counts_invalidation(self, store, A):
        store.put(A, GTX680, TuningPoint())
        blobs = json.loads(store.path.read_text())
        for v in blobs["entries"].values():
            v["version"] = 999
        store.path.write_text(json.dumps(blobs))
        fresh = TuningStore(store.path)
        assert fresh.get(A, GTX680) is None
        assert (fresh.hits, fresh.misses, fresh.invalidations) == (0, 1, 1)


class TestEngineIntegration:
    def test_store_skips_second_search(self, store, A, rng):
        from repro import SpMVEngine

        eng = SpMVEngine("gtx680")
        first = eng.prepare(A, store=store)
        assert first.tuning is not None  # searched
        assert first.tuning.evaluated > 0
        assert first.tuning.store_checked and not first.tuning.store_hit
        assert len(store) == 1

        second = eng.prepare(A, store=store)
        # Served from the store: the hit is observable on the result and
        # zero kernel evaluations were performed.
        assert second.tuning is not None
        assert second.tuning.store_hit
        assert second.tuning.evaluated == 0
        assert second.tuning.history == []
        assert second.point == first.point
        assert second.tuning.best_point == first.point

        x = rng.standard_normal(80)
        np.testing.assert_allclose(eng.multiply(second, x).y, A @ x, atol=1e-9)

    def test_warm_start_round_trip_fresh_engine(self, store, A, rng):
        """A brand-new engine with the same store file skips the search."""
        from repro import SpMVEngine
        from repro.tuning import KernelPlanCache

        eng1 = SpMVEngine("gtx680", plan_store=store)
        first = eng1.prepare(A)
        assert not first.tuning.store_hit

        # Fresh engine, fresh plan cache, fresh store object over the
        # same file: still zero evaluations and zero plan compiles.
        cache = KernelPlanCache()
        eng2 = SpMVEngine(
            "gtx680", plan_cache=cache, plan_store=TuningStore(store.path)
        )
        second = eng2.prepare(A)
        assert second.tuning.store_hit
        assert second.tuning.evaluated == 0
        assert cache.misses == 0  # no kernel plans were compiled
        assert second.point == first.point
        assert eng2.plan_store.hits == 1

        x = rng.standard_normal(80)
        np.testing.assert_allclose(eng2.multiply(second, x).y, A @ x, atol=1e-9)

    def test_schema_mismatch_falls_back_to_search(self, store, A):
        """A version-bumped entry is invalidated, counted, and re-tuned."""
        from repro import SpMVEngine

        store.put(A, GTX680, TuningPoint())
        blobs = json.loads(store.path.read_text())
        for v in blobs["entries"].values():
            v["version"] = 999
        store.path.write_text(json.dumps(blobs))

        eng = SpMVEngine("gtx680", plan_store=TuningStore(store.path))
        prepared = eng.prepare(A)
        assert prepared.tuning.store_checked and not prepared.tuning.store_hit
        assert prepared.tuning.store_invalidations == 1
        assert prepared.tuning.evaluated > 0
        # The re-tuned winner was written back in the current schema.
        assert TuningStore(store.path).get(A, GTX680) == prepared.point

    def test_per_call_store_overrides_engine_store(self, store, tmp_path, A):
        from repro import SpMVEngine

        override = TuningStore(tmp_path / "override.json")
        eng = SpMVEngine("gtx680", plan_store=store)
        eng.prepare(A, store=override)
        assert len(override) == 1
        assert len(store) == 0


class TestHardening:
    """Concurrency and corruption behaviour of the store file."""

    def test_interleaved_writers_keep_both_entries(self, store, A, random_matrix):
        """Lost-update regression: two writers with stale snapshots.

        Both stores read the (empty) file before either writes.  A naive
        write-my-snapshot implementation would make the second ``put``
        clobber the first; the locked read-modify-write must keep both.
        """
        B = random_matrix(nrows=40, ncols=40, density=0.1, seed=5)
        writer_a = TuningStore(store.path)
        writer_b = TuningStore(store.path)
        # Force both to snapshot the file *before* either writes.
        assert writer_a.get(A, GTX680) is None
        assert writer_b.get(B, GTX680) is None

        writer_a.put(A, GTX680, TuningPoint(block_height=2))
        writer_b.put(B, GTX680, TuningPoint(block_height=3))

        fresh = TuningStore(store.path)
        assert fresh.get(A, GTX680).block_height == 2
        assert fresh.get(B, GTX680).block_height == 3
        assert len(fresh) == 2

    def test_on_disk_layout_is_schema_wrapped(self, store, A):
        store.put(A, GTX680, TuningPoint())
        blob = json.loads(store.path.read_text())
        assert blob["schema"] == 2
        assert isinstance(blob["entries"], dict)
        assert len(blob["entries"]) == 1

    def test_legacy_flat_layout_still_loads(self, store, A):
        store.put(A, GTX680, TuningPoint(block_height=2))
        blob = json.loads(store.path.read_text())
        # Rewrite in the version-1 layout: bare entry dict, no wrapper.
        store.path.write_text(json.dumps(blob["entries"]))
        fresh = TuningStore(store.path)
        assert fresh.get(A, GTX680).block_height == 2
        assert fresh.corruptions == 0
        # A write-back upgrades the file to the wrapped layout.
        fresh.put(A, GTX680, TuningPoint(block_height=3))
        assert json.loads(store.path.read_text())["schema"] == 2

    def test_unknown_future_schema_is_empty_but_untouched(self, store, A):
        payload = json.dumps({"schema": 99, "entries": {"x": {}}})
        store.path.write_text(payload)
        fresh = TuningStore(store.path)
        assert fresh.get(A, GTX680) is None
        assert fresh.corruptions == 0
        # The newer build's file was left exactly as it was.
        assert store.path.read_text() == payload

    def test_corrupt_file_is_quarantined(self, store, A):
        store.path.write_text("{definitely not json")
        fresh = TuningStore(store.path)
        assert fresh.get(A, GTX680) is None
        assert fresh.corruptions == 1
        corrupt = store.path.with_suffix(store.path.suffix + ".corrupt")
        assert corrupt.exists()
        assert corrupt.read_text() == "{definitely not json"
        assert not store.path.exists()
        # The store stays usable: the next put starts a fresh file.
        fresh.put(A, GTX680, TuningPoint(block_height=2))
        assert TuningStore(store.path).get(A, GTX680).block_height == 2

    def test_corruption_fault_site_end_to_end(self, store, A):
        from repro.fault import FaultPlan
        from repro.fault.injection import fault_scope

        store.put(A, GTX680, TuningPoint(block_height=2))
        plan = FaultPlan.parse("store.corruption:p=1.0,count=1,seed=5")
        with fault_scope(plan):
            fresh = TuningStore(store.path)
            assert fresh.get(A, GTX680) is None  # garbled on read
        assert fresh.corruptions == 1
        assert store.path.with_suffix(store.path.suffix + ".corrupt").exists()
        events = plan.drain_events()
        assert any(e.site == "store.corruption" for e in events)

    def test_quarantine_emits_metric(self, store, A):
        from repro.obs import Observer, obs_scope

        store.path.write_text("garbage[[[")
        obs = Observer()
        with obs_scope(obs):
            TuningStore(store.path).get(A, GTX680)
        assert obs.metrics.get("store.corruptions").value() == 1
