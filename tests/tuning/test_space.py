"""Tests for search-space enumeration and pruning."""

import numpy as np
import pytest
from scipy import sparse

from repro.gpu import GTX680
from repro.tuning import candidate_slice_counts, exhaustive_space, pruned_space


@pytest.fixture
def narrow(random_matrix):
    return random_matrix(nrows=100, ncols=100, density=0.05)


@pytest.fixture
def wide():
    return sparse.random(100, 500_000, density=2e-5, random_state=0, format="csr")


class TestPrunedSpace:
    def test_section4_heuristics_hold(self, narrow):
        points = list(pruned_space(narrow, GTX680))
        assert points
        blocks = {(p.block_height, p.block_width) for p in points}
        assert len(blocks) <= 4  # only the 4 smallest footprints
        assert all(p.kernel.transpose == "offline" for p in points)
        assert all(p.kernel.use_texture for p in points)
        assert all(
            p.kernel.strategy != 1 or p.kernel.shm_size == 0 for p in points
        )
        assert all(
            p.kernel.strategy != 2 or p.kernel.result_cache_multiple in (1, 2)
            for p in points
        )

    def test_narrow_matrix_skips_bccoo_plus(self, narrow):
        points = list(pruned_space(narrow, GTX680))
        assert all(p.slice_count == 1 for p in points)

    def test_wide_matrix_includes_bccoo_plus(self, wide):
        points = list(pruned_space(wide, GTX680))
        assert any(p.slice_count > 1 for p in points)

    def test_much_smaller_than_exhaustive(self, narrow):
        pruned = sum(1 for _ in pruned_space(narrow, GTX680))
        exhaustive = sum(1 for _ in exhaustive_space(narrow, GTX680))
        assert pruned * 4 < exhaustive


class TestSliceCandidates:
    def test_small_vector_one(self, narrow):
        assert candidate_slice_counts(narrow, GTX680) == (1,)

    def test_large_vector_scales_with_overflow(self, wide):
        counts = candidate_slice_counts(wide, GTX680)
        assert counts[0] == 1
        assert counts[-1] >= 500_000 * 4 / GTX680.tex_cache_bytes / 2

    def test_counts_are_valid_slice_counts(self, wide):
        from repro.tuning import SLICE_COUNTS

        for c in candidate_slice_counts(wide, GTX680):
            assert c in SLICE_COUNTS


class TestExhaustiveSpace:
    def test_restrictable(self, narrow):
        points = list(
            exhaustive_space(
                narrow,
                GTX680,
                workgroup_sizes=(64,),
                block_heights=(1,),
                block_widths=(1,),
                bit_words=("uint32",),
            )
        )
        assert points
        assert all(p.kernel.workgroup_size == 64 for p in points)
        # Unpruned axes present: both transposes, both texture modes.
        assert {p.kernel.transpose for p in points} == {"offline", "online"}
        assert {p.kernel.use_texture for p in points} == {True, False}
        assert {p.col_compress for p in points} == {True, False}
