"""Tests for the auto-tuner driver."""

import numpy as np
import pytest

from repro.errors import TuningError
from repro.gpu import GTX480, GTX680
from repro.tuning import AutoTuner, KernelPlanCache


@pytest.fixture
def small(random_matrix):
    return random_matrix(nrows=120, ncols=120, density=0.06)


class TestTune:
    def test_returns_consistent_best(self, small):
        res = AutoTuner(GTX680).tune(small)
        assert res.evaluated > 0
        assert res.best.time_s > 0
        assert res.best.time_s == min(e.time_s for e in res.history)

    def test_history_top(self, small):
        res = AutoTuner(GTX680).tune(small)
        top = res.top(3)
        assert len(top) == 3
        assert top[0].time_s <= top[1].time_s <= top[2].time_s
        assert top[0].time_s == res.best.time_s

    def test_best_point_is_runnable(self, small, rng):
        from repro.core import SpMVEngine

        res = AutoTuner(GTX680).tune(small)
        eng = SpMVEngine(GTX680)
        prep = eng.prepare(small, point=res.best_point)
        x = rng.standard_normal(small.shape[1])
        out = eng.multiply(prep, x)
        np.testing.assert_allclose(out.y, small @ x, atol=1e-9)

    def test_plan_cache_shared_across_matrices(self, random_matrix):
        cache = KernelPlanCache()
        tuner = AutoTuner(GTX680, plan_cache=cache)
        tuner.tune(random_matrix(seed=1))
        misses_after_first = cache.misses
        tuner.tune(random_matrix(seed=2))
        # Second matrix reuses nearly every compiled plan.
        assert cache.misses <= misses_after_first * 1.5
        assert cache.hits > 0

    def test_devices_can_disagree(self, small):
        # Not asserting they must differ -- only that both tune cleanly
        # and report device-consistent bests.
        r680 = AutoTuner(GTX680).tune(small)
        r480 = AutoTuner(GTX480).tune(small)
        assert r680.best.time_s > 0 and r480.best.time_s > 0

    def test_no_history_mode(self, small):
        res = AutoTuner(GTX680, keep_history=False).tune(small)
        assert res.history == []
        assert res.best.time_s > 0

    def test_bad_mode(self):
        with pytest.raises(TuningError, match="mode"):
            AutoTuner(GTX680, mode="random")

    def test_exhaustive_restricted_finds_at_least_pruned_quality(self, small):
        pruned = AutoTuner(GTX680).tune(small)
        exhaustive = AutoTuner(
            GTX680,
            mode="exhaustive",
            exhaustive_kwargs=dict(
                workgroup_sizes=(pruned.best_point.kernel.workgroup_size,),
                block_heights=(pruned.best_point.block_height,),
                block_widths=(pruned.best_point.block_width,),
                bit_words=(pruned.best_point.bit_word,),
            ),
        ).tune(small)
        # The exhaustive sweep includes the pruned winner's axes, so it
        # can only match or beat it.
        assert exhaustive.best.time_s <= pruned.best.time_s * 1.0001


class TestResultProtocol:
    """``summary()``/``to_dict()``/``describe_point()`` for exporters."""

    def test_to_dict_is_jsonable(self, small):
        import json

        result = AutoTuner(GTX680, keep_history=True).tune(small)
        d = json.loads(json.dumps(result.to_dict()))
        assert d["kind"] == "tuning_result"
        assert d["evaluated"] == result.evaluated
        assert d["best_point"]["format"] == result.best_point.format_name
        assert d["best"]["gflops"] == pytest.approx(result.best.gflops)

    def test_summary_and_describe_point(self, small):
        result = AutoTuner(GTX680).tune(small)
        text = result.summary()
        assert f"evaluated {result.evaluated} configurations" in text
        assert "best:" in text
        assert result.describe_point() in text
        assert "GFLOPS" in text

    def test_warm_start_summary(self, small):
        from repro.tuning.tuner import TuningResult

        point = AutoTuner(GTX680).tune(small).best_point
        warm = TuningResult.from_store(point)
        text = warm.summary()
        assert "warm start" in text
        assert "0 configurations evaluated" in text
        assert warm.to_dict()["store_hit"] is True
